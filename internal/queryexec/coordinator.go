package queryexec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
)

// MemExecutor answers subqueries against an indexing server's in-memory
// trees (the fresh-data path). Implemented by *ingest.Server.
type MemExecutor interface {
	ExecuteSubQuery(sq *model.SubQuery) *model.Result
}

// ErrNoQueryServers is returned when chunk subqueries exist but no query
// server is alive.
var ErrNoQueryServers = errors.New("queryexec: no live query servers")

// CoordinatorConfig tunes the coordinator.
type CoordinatorConfig struct {
	// LateDeltaMillis is Δt, the late-visibility parameter (§IV-D): the
	// coordinator widens every live region's left temporal bound by Δt so
	// tuples arriving up to Δt late are never missed. Default 10 000 ms.
	LateDeltaMillis int64
	// Policy is the subquery dispatch policy (default LADA).
	Policy Policy
	// Metrics holds the coordinator telemetry handles. Nil disables
	// instrumentation.
	Metrics *CoordinatorMetrics
	// Traces, when non-nil, retains a QueryTrace for every executed query
	// (a bounded ring; see telemetry.NewTraceRing).
	Traces *telemetry.TraceRing
}

// CoordinatorMetrics are the telemetry handles the query path feeds. All
// handles are nil-safe; the zero value is a no-op.
type CoordinatorMetrics struct {
	Queries         *telemetry.Counter
	QueryErrors     *telemetry.Counter
	MemSubQueries   *telemetry.Counter
	ChunkSubQueries *telemetry.Counter
	Redispatches    *telemetry.Counter
	QueryNanos      *telemetry.Histogram
	// WorkersBusy tracks dispatch-pool occupancy: how many chunk
	// subqueries are executing on query servers right now, across all
	// in-flight queries.
	WorkersBusy *telemetry.Gauge
	// AggQueries counts aggregate queries; AggMetaChunks counts chunks they
	// answered entirely from registered chunk summaries — no subquery, no
	// header read.
	AggQueries    *telemetry.Counter
	AggMetaChunks *telemetry.Counter
	// TierPruned counts chunk candidates a recurring-window query
	// eliminated through the metadata time-bucket hierarchy before any
	// header was read.
	TierPruned *telemetry.Counter
	// RetiredSubQueries counts chunk subqueries completed empty because
	// their chunk was retired (dropped or compacted away) mid-flight.
	RetiredSubQueries *telemetry.Counter

	// Per-policy dispatch latency histograms, registered lazily the first
	// time a policy dispatches.
	reg      *telemetry.Registry
	mu       sync.Mutex
	dispatch map[string]*telemetry.Histogram
}

// NewCoordinatorMetrics registers the query-path metric set on r (nil r
// gives all-nil, no-op handles).
func NewCoordinatorMetrics(r *telemetry.Registry) *CoordinatorMetrics {
	return &CoordinatorMetrics{
		Queries:         r.Counter("waterwheel_queries_total", "queries executed by the coordinator"),
		QueryErrors:     r.Counter("waterwheel_query_errors_total", "queries that returned an error"),
		MemSubQueries:   r.Counter("waterwheel_query_mem_subqueries_total", "fresh-data subqueries dispatched to indexing servers"),
		ChunkSubQueries: r.Counter("waterwheel_query_chunk_subqueries_total", "chunk subqueries dispatched to query servers"),
		Redispatches:    r.Counter("waterwheel_query_redispatches_total", "chunk subqueries returned to the pending set after a query-server failure"),
		QueryNanos:      r.Histogram("waterwheel_query_seconds", "end-to-end query latency"),
		WorkersBusy:     r.Gauge("waterwheel_query_workers_busy", "chunk subqueries currently executing on query servers"),
		AggQueries:      r.Counter("waterwheel_agg_queries_total", "aggregate queries executed by the coordinator"),
		AggMetaChunks:   r.Counter("waterwheel_agg_meta_chunks_total", "chunks answered from metadata summaries during aggregate queries"),
		TierPruned:      r.Counter("waterwheel_tier_pruned_chunks_total", "chunk candidates pruned by the time-bucket hierarchy on recurring-window queries"),
		RetiredSubQueries: r.Counter("waterwheel_query_retired_subqueries_total", "chunk subqueries completed empty because their chunk retired mid-flight"),
		reg:             r,
	}
}

// dispatchHist returns the dispatch-latency histogram for a policy,
// registering it on first use. Nil-safe.
func (m *CoordinatorMetrics) dispatchHist(policy string) *telemetry.Histogram {
	if m == nil || m.reg == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.dispatch[policy]; ok {
		return h
	}
	h := m.reg.Histogram(fmt.Sprintf("waterwheel_query_dispatch_seconds{policy=%q}", policy),
		"subquery fan-out latency by dispatch policy")
	if m.dispatch == nil {
		m.dispatch = make(map[string]*telemetry.Histogram)
	}
	m.dispatch[policy] = h
	return h
}

// policyName names a dispatch policy for labels and traces.
func policyName(p Policy) string {
	if n, ok := p.(interface{ Name() string }); ok {
		return n.Name()
	}
	return fmt.Sprintf("%T", p)
}

// Coordinator decomposes user queries into subqueries, dispatches them
// across indexing servers (fresh data) and query servers (chunks), and
// merges the results (§IV-A).
type Coordinator struct {
	cfg CoordinatorConfig
	ms  *meta.Server
	fs  *dfs.FS
	// m mirrors cfg.Metrics, defaulted to a no-op set so the query path
	// never branches on nil.
	m *CoordinatorMetrics

	mu       sync.RWMutex
	qservers []*Server
	memExec  map[int]MemExecutor
}

// NewCoordinator creates a coordinator.
func NewCoordinator(cfg CoordinatorConfig, ms *meta.Server, fs *dfs.FS) *Coordinator {
	if cfg.LateDeltaMillis <= 0 {
		cfg.LateDeltaMillis = 10_000
	}
	if cfg.Policy == nil {
		cfg.Policy = LADA{}
	}
	m := cfg.Metrics
	if m == nil {
		m = &CoordinatorMetrics{}
	}
	return &Coordinator{cfg: cfg, ms: ms, fs: fs, m: m, memExec: make(map[int]MemExecutor)}
}

// Traces returns the coordinator's trace ring (nil when tracing is off).
func (c *Coordinator) Traces() *telemetry.TraceRing { return c.cfg.Traces }

// AddQueryServer registers a query server.
func (c *Coordinator) AddQueryServer(s *Server) {
	c.mu.Lock()
	c.qservers = append(c.qservers, s)
	c.mu.Unlock()
}

// SetMemExecutor registers the fresh-data executor of an indexing server.
func (c *Coordinator) SetMemExecutor(indexServer int, e MemExecutor) {
	c.mu.Lock()
	c.memExec[indexServer] = e
	c.mu.Unlock()
}

// SetPolicy switches the dispatch policy (used by the experiments).
func (c *Coordinator) SetPolicy(p Policy) {
	c.mu.Lock()
	c.cfg.Policy = p
	c.mu.Unlock()
}

// Decompose splits a query into memtable subqueries (fresh data on
// indexing servers) and chunk subqueries (historical data on query
// servers), using the metadata R-tree for the chunk candidates.
func (c *Coordinator) Decompose(q model.Query) (memSubs, chunkSubs []*model.SubQuery) {
	qRegion := q.Region()
	seq := 0
	subLimit := q.Limit
	// The chunk candidates and the chunk-ID watermark come from one
	// metadata critical section: a chunk registered by a concurrent flush
	// is either in this plan or has ID >= watermark, in which case the
	// producing indexing server still serves it from the pending snapshot
	// (SubQuery.AsOfChunk below) — never both, never neither.
	var (
		chunks    []meta.ChunkInfo
		watermark uint64
	)
	if windows := q.Recur.Windows(q.Times); windows != nil {
		// Recurring-window query: the metadata time-bucket hierarchy prunes
		// candidates whose hour buckets meet no window before any header is
		// read. The windows are hour-superset at this level; exactness comes
		// from the coordinator's recurrence filter on collected tuples, so
		// per-subquery limits are unsound here (a subquery's first Limit
		// matches may all fall outside the windows) — the merge applies
		// q.Limit after the filter instead.
		var pruned int
		chunks, pruned, watermark = c.ms.ChunksForWindowsWithWatermark(qRegion, windows)
		c.m.TierPruned.Add(int64(pruned))
		subLimit = 0
	} else {
		chunks, watermark = c.ms.ChunksForWithWatermark(qRegion)
	}
	for _, ci := range chunks {
		r, ok := qRegion.Intersect(ci.Region)
		if !ok {
			continue
		}
		chunkSubs = append(chunkSubs, &model.SubQuery{
			QueryID: q.ID, Seq: seq, Region: r, Filter: q.Filter, Chunk: ci.ID,
			Limit: subLimit,
			// Thread the chunk's file metadata through the plan: the
			// dispatch loop needs Path for replica locality and the query
			// server needs Path+HeaderLen to open the chunk — neither
			// should repeat the metadata lookup this loop already did.
			ChunkPath: ci.Path, ChunkHeaderLen: ci.HeaderLen,
		})
		seq++
	}
	for _, lr := range c.ms.LiveRegions() {
		if lr.Empty {
			continue
		}
		if !lr.Keys.Overlaps(q.Keys) {
			continue
		}
		// Widen the live region's left bound by Δt (§IV-D): presume late
		// tuples up to Δt behind the observed minimum.
		lo := lr.MinTime - model.Timestamp(c.cfg.LateDeltaMillis)
		if q.Times.Hi < lo {
			continue
		}
		kr, _ := lr.Keys.Intersect(q.Keys)
		memSubs = append(memSubs, &model.SubQuery{
			QueryID: q.ID, Seq: seq,
			Region:      model.Region{Keys: kr, Times: q.Times},
			Filter:      q.Filter,
			Chunk:       model.MemChunk,
			IndexServer: lr.Server,
			Limit:       subLimit,
			AsOfChunk:   watermark,
		})
		seq++
	}
	return memSubs, chunkSubs
}

// Execute runs a query to completion and returns the merged result with
// tuples sorted by (key, time). When the coordinator was configured with
// a trace ring, the query's trace is retained there.
func (c *Coordinator) Execute(q model.Query) (*model.Result, error) {
	var root *telemetry.Span
	if c.cfg.Traces != nil {
		root = telemetry.StartSpan("query")
	}
	res, _, err := c.execute(q, root)
	return res, err
}

// ExecuteTraced runs a query like Execute and additionally returns its
// span tree — Waterwheel's EXPLAIN ANALYZE. Tracing is forced on for this
// query even when no trace ring is configured.
func (c *Coordinator) ExecuteTraced(q model.Query) (*model.Result, *telemetry.QueryTrace, error) {
	root := telemetry.StartSpan("query")
	res, tr, err := c.execute(q, root)
	return res, tr, err
}

// execute is the shared query engine behind Execute and ExecuteTraced.
// root may be nil (tracing off): every span operation degrades to a nil
// check.
func (c *Coordinator) execute(q model.Query, root *telemetry.Span) (*model.Result, *telemetry.QueryTrace, error) {
	q = c.ms.RegisterQuery(q)
	defer c.ms.CompleteQuery(q.ID)

	c.mu.RLock()
	policy := c.cfg.Policy
	c.mu.RUnlock()
	pname := policyName(policy)

	c.m.Queries.Inc()
	start := time.Now()
	var tr *telemetry.QueryTrace
	finish := func(err error) {
		c.m.QueryNanos.Observe(time.Since(start))
		if err != nil {
			c.m.QueryErrors.Inc()
			root.SetStr("error", err.Error())
		}
		root.End()
		if root != nil {
			tr = &telemetry.QueryTrace{QueryID: q.ID, Policy: pname, Root: root}
			c.cfg.Traces.Add(tr)
		}
	}

	decSp := root.StartChild("decompose")
	memSubs, chunkSubs := c.Decompose(q)
	decSp.SetInt("mem_subqueries", int64(len(memSubs)))
	decSp.SetInt("chunk_subqueries", int64(len(chunkSubs)))
	decSp.End()
	c.m.MemSubQueries.Add(int64(len(memSubs)))
	c.m.ChunkSubQueries.Add(int64(len(chunkSubs)))

	res := &model.Result{QueryID: q.ID, SubQueries: len(memSubs) + len(chunkSubs)}

	var (
		wg sync.WaitGroup
		mu sync.Mutex
		// parts collects each subquery's tuples, sorted in canonical order
		// by the delivering goroutine, for the final k-way merge. Memtable
		// results need the sort (tree, side store and pending snapshots are
		// concatenated); chunk results need it only to canonicalize time
		// order within equal keys.
		parts [][]model.Tuple
	)
	collect := func(r *model.Result) {
		if r == nil {
			return
		}
		if q.Recur != nil {
			// The recurrence is the query's exact time semantics; subquery
			// regions are only pruned to it at hour-bucket granularity.
			kept := r.Tuples[:0]
			for _, t := range r.Tuples {
				if q.Recur.Contains(t.Time) {
					kept = append(kept, t)
				}
			}
			r.Tuples = kept
		}
		r.SortTuples()
		mu.Lock()
		res.MergeCounters(r)
		if len(r.Tuples) > 0 {
			parts = append(parts, r.Tuples)
		}
		mu.Unlock()
	}
	// Fresh-data subqueries run on their indexing servers in parallel with
	// the chunk fan-out.
	c.mu.RLock()
	execs := make([]MemExecutor, 0, len(memSubs))
	for _, sq := range memSubs {
		execs = append(execs, c.memExec[sq.IndexServer])
	}
	c.mu.RUnlock()
	for i, sq := range memSubs {
		if execs[i] == nil {
			err := fmt.Errorf("queryexec: no executor for indexing server %d", sq.IndexServer)
			finish(err)
			return nil, tr, err
		}
	}
	dispSp := root.StartChild("dispatch")
	dispSp.SetStr("policy", pname)
	dispStart := time.Now()
	for i, sq := range memSubs {
		wg.Add(1)
		go func(e MemExecutor, sq *model.SubQuery) {
			defer wg.Done()
			memSp := dispSp.StartChild("mem_subquery")
			memSp.SetInt("index_server", int64(sq.IndexServer))
			r := e.ExecuteSubQuery(sq)
			if r != nil {
				memSp.SetInt("tuples", int64(len(r.Tuples)))
			}
			memSp.End()
			collect(r)
		}(execs[i], sq)
	}

	var chunkErr error
	if len(chunkSubs) > 0 {
		chunkErr = c.runChunkSubqueries(chunkSubs, collect, dispSp)
	}
	wg.Wait()
	dispSp.End()
	c.m.dispatchHist(pname).Observe(time.Since(dispStart))
	if chunkErr != nil {
		finish(chunkErr)
		return nil, tr, chunkErr
	}
	// K-way merge of the per-subquery sorted runs, stopping at Limit: a
	// LIMIT n query pays O(n log k), not a full sort of everything the
	// subqueries delivered.
	mergeSp := root.StartChild("merge")
	res.Tuples = model.MergeSortedTuples(parts, q.Limit)
	mergeSp.SetInt("tuples", int64(len(res.Tuples)))
	mergeSp.End()
	finish(nil)
	return res, tr, nil
}

// regionCovers reports whether outer fully contains inner.
func regionCovers(outer, inner model.Region) bool {
	return outer.Keys.Lo <= inner.Keys.Lo && inner.Keys.Hi <= outer.Keys.Hi &&
		outer.Times.Lo <= inner.Times.Lo && inner.Times.Hi <= outer.Times.Hi
}

// ExecuteAggregate runs an aggregate query (COUNT/MIN/MAX/SUM over a
// key×time region) with aggregation pushdown at every level: chunks whose
// region lies fully inside an unfiltered query are answered from their
// registered summary without any subquery; the remaining chunk subqueries
// let query servers answer covered leaves from header pre-aggregates; the
// fresh-data path folds memtable tuples on the indexing servers. Only
// partial aggregates travel — never tuples.
func (c *Coordinator) ExecuteAggregate(q model.AggregateQuery) (*model.AggResult, error) {
	// Register like a tuple query so pending-snapshot sweeping respects this
	// query's chunk horizon for the duration of the scan.
	mq := c.ms.RegisterQuery(model.Query{ID: q.ID, Keys: q.Keys, Times: q.Times, Filter: q.Filter})
	defer c.ms.CompleteQuery(mq.ID)

	c.m.AggQueries.Inc()
	start := time.Now()
	spec := &model.AggSpec{Field: q.Field, CountOnly: q.Kind == model.AggCount}
	res := &model.AggResult{QueryID: mq.ID, Kind: q.Kind}
	qRegion := q.Region()

	chunks, watermark := c.ms.ChunksForWithWatermark(qRegion)
	seq := 0
	var chunkSubs []*model.SubQuery
	for _, ci := range chunks {
		r, ok := qRegion.Intersect(ci.Region)
		if !ok {
			continue
		}
		// Meta-level pushdown: every tuple of a fully covered chunk matches
		// an unfiltered query, so its registered count/summary is exact.
		if q.Filter == nil && regionCovers(qRegion, ci.Region) {
			if spec.CountOnly {
				res.Count += uint64(ci.Count)
				res.MetaChunks++
				continue
			}
			if ci.Agg != nil && ci.Agg.Field == q.Field {
				res.AggPartial.Merge(&ci.Agg.AggPartial)
				res.MetaChunks++
				continue
			}
		}
		chunkSubs = append(chunkSubs, &model.SubQuery{
			QueryID: mq.ID, Seq: seq, Region: r, Filter: q.Filter, Chunk: ci.ID,
			ChunkPath: ci.Path, ChunkHeaderLen: ci.HeaderLen,
			Agg: spec,
		})
		seq++
	}
	var memSubs []*model.SubQuery
	for _, lr := range c.ms.LiveRegions() {
		if lr.Empty || !lr.Keys.Overlaps(q.Keys) {
			continue
		}
		lo := lr.MinTime - model.Timestamp(c.cfg.LateDeltaMillis)
		if q.Times.Hi < lo {
			continue
		}
		kr, _ := lr.Keys.Intersect(q.Keys)
		memSubs = append(memSubs, &model.SubQuery{
			QueryID: mq.ID, Seq: seq,
			Region:      model.Region{Keys: kr, Times: q.Times},
			Filter:      q.Filter,
			Chunk:       model.MemChunk,
			IndexServer: lr.Server,
			AsOfChunk:   watermark,
			Agg:         spec,
		})
		seq++
	}
	c.m.AggMetaChunks.Add(int64(res.MetaChunks))
	c.m.MemSubQueries.Add(int64(len(memSubs)))
	c.m.ChunkSubQueries.Add(int64(len(chunkSubs)))
	res.SubQueries = len(memSubs) + len(chunkSubs)

	var mu sync.Mutex
	collect := func(r *model.Result) {
		if r == nil {
			return
		}
		mu.Lock()
		if r.Agg != nil {
			res.AggPartial.Merge(r.Agg)
		}
		res.PushdownLeaves += r.AggPushdown
		res.LeavesRead += r.LeavesRead
		res.LeavesSkipped += r.LeavesSkipped
		res.BytesRead += r.BytesRead
		res.CacheHits += r.CacheHits
		mu.Unlock()
	}

	c.mu.RLock()
	execs := make([]MemExecutor, 0, len(memSubs))
	for _, sq := range memSubs {
		execs = append(execs, c.memExec[sq.IndexServer])
	}
	c.mu.RUnlock()
	for i, sq := range memSubs {
		if execs[i] == nil {
			err := fmt.Errorf("queryexec: no executor for indexing server %d", sq.IndexServer)
			c.m.QueryErrors.Inc()
			return nil, err
		}
	}
	var wg sync.WaitGroup
	for i, sq := range memSubs {
		wg.Add(1)
		go func(e MemExecutor, sq *model.SubQuery) {
			defer wg.Done()
			collect(e.ExecuteSubQuery(sq))
		}(execs[i], sq)
	}
	var chunkErr error
	if len(chunkSubs) > 0 {
		chunkErr = c.runChunkSubqueries(chunkSubs, collect, nil)
	}
	wg.Wait()
	c.m.QueryNanos.Observe(time.Since(start))
	if chunkErr != nil {
		c.m.QueryErrors.Inc()
		return nil, chunkErr
	}
	return res, nil
}

// ExplainInfo describes how a query would execute, for introspection and
// tooling: the fresh-data targets and the chunk candidates with their
// clipped regions.
type ExplainInfo struct {
	// MemSubQueries target indexing-server memtables.
	MemSubQueries []model.SubQuery
	// ChunkSubQueries target flushed chunks.
	ChunkSubQueries []model.SubQuery
	// Chunks carries the metadata of each targeted chunk, aligned with
	// ChunkSubQueries.
	Chunks []meta.ChunkInfo
}

// Explain decomposes a query without executing it.
func (c *Coordinator) Explain(q model.Query) ExplainInfo {
	memSubs, chunkSubs := c.Decompose(q)
	info := ExplainInfo{}
	for _, sq := range memSubs {
		info.MemSubQueries = append(info.MemSubQueries, *sq)
	}
	ids := make([]model.ChunkID, len(chunkSubs))
	for i, sq := range chunkSubs {
		info.ChunkSubQueries = append(info.ChunkSubQueries, *sq)
		ids[i] = sq.Chunk
	}
	info.Chunks = c.ms.ChunksByID(ids)
	return info
}

// subquery claim states.
const (
	statePending int32 = iota
	stateClaimed
	stateDone
)

// board coordinates the sweep phase of one dispatch: workers that have
// exhausted their preference lists block here instead of busy-spinning,
// and are woken when a failure returns a subquery to the pending set
// (epoch bump) or when the last subquery completes.
type board struct {
	mu    sync.Mutex
	cond  sync.Cond
	total int
	done  int
	epoch uint64
}

func newBoard(total int) *board {
	b := &board{total: total}
	b.cond.L = &b.mu
	return b
}

// finished records one completed subquery, waking sweepers when it was
// the last.
func (b *board) finished() {
	b.mu.Lock()
	b.done++
	if b.done == b.total {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// redispatched signals that a subquery returned to the pending set. The
// caller must store statePending before calling, so woken sweepers
// observe the claimable state when they rescan.
func (b *board) redispatched() {
	b.mu.Lock()
	b.epoch++
	b.cond.Broadcast()
	b.mu.Unlock()
}

// snapshot returns (epoch, allDone) for one sweep round. Taking the epoch
// before the claim scan makes redispatches during the scan impossible to
// miss: wait(epoch) returns immediately when the epoch has moved on.
func (b *board) snapshot() (uint64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch, b.done == b.total
}

// wait blocks until every subquery completed (returns true) or the epoch
// moved past the caller's snapshot (returns false → rescan).
func (b *board) wait(epoch uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.done < b.total && b.epoch == epoch {
		b.cond.Wait()
	}
	return b.done == b.total
}

func (b *board) doneCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.done
}

// runChunkSubqueries drives the dispatch engine: the policy builds the
// per-server preference lists, then a pool of Workers goroutines per live
// query server claims subqueries from the shared pending set in the
// server's preference order (§IV-C), overlapping chunk I/O so one server
// executes several subqueries concurrently (§IV-B). A failed server's
// claimed subqueries return to the pending set and are picked up by
// another server's workers (§V); workers that exhaust their list sweep
// for still-pending work, parking on the board (no busy-wait) until a
// redispatch or completion wakes them.
func (c *Coordinator) runChunkSubqueries(sqs []*model.SubQuery, deliver func(*model.Result), sp *telemetry.Span) error {
	c.mu.RLock()
	servers := append([]*Server(nil), c.qservers...)
	policy := c.cfg.Policy
	c.mu.RUnlock()

	live := servers[:0]
	for _, s := range servers {
		if !s.Down() {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return ErrNoQueryServers
	}

	placements := make([]ServerPlacement, len(live))
	for i, s := range live {
		placements[i] = ServerPlacement{ID: s.ID(), Node: s.Node()}
	}
	// One batched replica-location lookup for the whole plan. Paths come
	// from the plan itself (Decompose threads each chunk's metadata into
	// its subquery); hand-built subqueries without a path fall back to a
	// metadata fetch, and the resolved path is threaded onward so the
	// executing server skips its own lookup too.
	paths := make([]string, len(sqs))
	for i, sq := range sqs {
		if sq.ChunkPath == "" {
			if ci, ok := c.ms.Chunk(sq.Chunk); ok {
				sq.ChunkPath, sq.ChunkHeaderLen = ci.Path, ci.HeaderLen
			}
		}
		paths[i] = sq.ChunkPath
	}
	locations := c.fs.LocationsBatch(paths)
	pref := policy.Plan(sqs, locations, placements)

	states := make([]atomic.Int32, len(sqs))
	b := newBoard(len(sqs))
	var wg sync.WaitGroup

	runOne := func(s *Server, idx int) bool {
		c.m.WorkersBusy.Add(1)
		defer c.m.WorkersBusy.Add(-1)
		sqSp := sp.StartChild("chunk_subquery")
		sqSp.SetInt("chunk", int64(sqs[idx].Chunk))
		sqSp.SetInt("query_server", int64(s.ID()))
		r, err := s.ExecuteSubQueryTraced(sqs[idx], sqSp)
		if err != nil {
			if errors.Is(err, ErrRetired) {
				if _, ok := c.ms.Chunk(sqs[idx].Chunk); !ok {
					// The chunk retired (retention drop or compaction) after
					// this plan was built: its data aged out of the store.
					// Complete the subquery empty instead of failing the
					// query — the replacement data, if any, was registered
					// atomically and is visible to the next plan.
					sqSp.SetInt("retired", 1)
					sqSp.End()
					c.m.RetiredSubQueries.Inc()
					states[idx].Store(stateDone)
					b.finished()
					return true
				}
				// Still registered: a replica hiccup, not retirement — fall
				// through to the redispatch path.
			}
			// Return the subquery to the pending set; this worker stops.
			sqSp.SetStr("error", err.Error())
			sqSp.End()
			c.m.Redispatches.Inc()
			states[idx].Store(statePending)
			b.redispatched()
			return false
		}
		sqSp.End()
		states[idx].Store(stateDone)
		b.finished()
		deliver(r)
		return true
	}

	for i, s := range live {
		for w := 0; w < s.Workers(); w++ {
			wg.Add(1)
			go func(s *Server, list []int) {
				defer wg.Done()
				// Claim in preference order. Workers of the same server
				// share the list; the CAS gives each pending subquery to
				// exactly one worker, so together they run the server's
				// top-k preferred pending subqueries concurrently.
				for _, idx := range list {
					if !states[idx].CompareAndSwap(statePending, stateClaimed) {
						continue
					}
					if !runOne(s, idx) {
						return
					}
				}
				// Sweep for re-dispatched (failed-elsewhere) subqueries
				// until everything is done or this server fails too. If a
				// subquery is claimed by a live server it will settle; if
				// its claimant failed it returns to pending and is picked
				// up here.
				for {
					epoch, done := b.snapshot()
					if done {
						return
					}
					progressed := false
					for idx := range states {
						if states[idx].CompareAndSwap(statePending, stateClaimed) {
							progressed = true
							if !runOne(s, idx) {
								return
							}
						}
					}
					if !progressed && b.wait(epoch) {
						return
					}
				}
			}(s, pref[i])
		}
	}
	wg.Wait()
	if n := b.doneCount(); n < len(sqs) {
		return fmt.Errorf("%w: %d/%d subqueries unserved after failures",
			ErrNoQueryServers, len(sqs)-n, len(sqs))
	}
	return nil
}
