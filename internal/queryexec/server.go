// Package queryexec implements Waterwheel's query path (paper §IV): the
// query servers that execute subqueries over flushed chunks with selective
// leaf reads, bloom-filter pruning and an LRU cache; the subquery dispatch
// policies (LADA and the three baselines of §VI-C2); and the query
// coordinator that decomposes user queries via the metadata R-tree, fans
// the subqueries out across indexing and query servers, and merges the
// results — re-dispatching on query-server failure (§V).
package queryexec

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"waterwheel/internal/chunk"
	"waterwheel/internal/dfs"
	"waterwheel/internal/lru"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
)

// ErrServerDown is returned by a query server with an injected failure.
var ErrServerDown = errors.New("queryexec: query server down")

// ErrRetired is returned when a subquery's chunk file has been deleted
// from the DFS — the chunk was retired (retention drop or compaction)
// while the subquery was in flight. The coordinator treats it as a
// redispatch signal: if the chunk is still registered the subquery
// retries, otherwise the data aged out of the store and the subquery
// completes empty.
var ErrRetired = errors.New("queryexec: chunk retired")

// ServerConfig configures a query server.
type ServerConfig struct {
	// ID is the query-server index.
	ID int
	// Node is the cluster node hosting the server — the basis of chunk
	// locality decisions.
	Node int
	// CacheBytes is the LRU budget (paper: 1 GB per query server).
	CacheBytes int64
	// UseBloom enables time-sketch leaf pruning (ablation switch).
	UseBloom bool
	// Workers is the number of dispatch-pool goroutines the coordinator
	// runs against this server — its subquery-level parallelism. The
	// workers spend their time parked on (simulated) DFS I/O, so the
	// default of 4 is deliberately not capped by GOMAXPROCS; 1 restores
	// serial per-server dispatch.
	Workers int
	// InflightReads bounds the DFS reads this server has outstanding at
	// once, across all of its concurrent subqueries. Zero means 4;
	// 1 serializes chunk I/O.
	InflightReads int
	// Metrics holds telemetry handles, typically shared across every
	// query server of a deployment. Nil disables instrumentation.
	Metrics *ServerMetrics
}

// ServerMetrics are the telemetry handles the chunk-read path feeds. All
// handles are nil-safe; the zero value is a no-op.
type ServerMetrics struct {
	SubQueries      *telemetry.Counter
	LeavesRead      *telemetry.Counter
	LeavesBloomSkip *telemetry.Counter
	CoalescedReads  *telemetry.Counter
	BytesRead       *telemetry.Counter
	HeaderHits      *telemetry.Counter
	HeaderMisses    *telemetry.Counter
	LeafHits        *telemetry.Counter
	LeafMisses      *telemetry.Counter
	HeaderEvictions *telemetry.Counter
	LeafEvictions   *telemetry.Counter
	// SingleFlightDedup counts reads a subquery skipped because a
	// concurrent subquery was already fetching the same bytes.
	SingleFlightDedup *telemetry.Counter
	// InflightReads gauges DFS reads currently outstanding.
	InflightReads *telemetry.Gauge
	SubQueryNanos *telemetry.Histogram
	// AggPushdownLeaves counts leaves an aggregate subquery answered from
	// header pre-aggregates without reading the leaf body; AggScannedLeaves
	// counts leaves it had to decode. Their ratio is the pushdown hit rate.
	AggPushdownLeaves *telemetry.Counter
	AggScannedLeaves  *telemetry.Counter
	// AggBytesSaved gauges the cumulative leaf-body bytes aggregation
	// pushdown avoided fetching from the DFS.
	AggBytesSaved *telemetry.Gauge
}

// NewServerMetrics registers the chunk-read metric set on r (nil r gives
// all-nil, no-op handles).
func NewServerMetrics(r *telemetry.Registry) *ServerMetrics {
	return &ServerMetrics{
		SubQueries:        r.Counter("waterwheel_chunk_subqueries_total", "chunk subqueries executed by query servers"),
		LeavesRead:        r.Counter("waterwheel_chunk_leaves_read_total", "chunk leaves scanned"),
		LeavesBloomSkip:   r.Counter("waterwheel_chunk_leaves_bloom_skipped_total", "chunk leaves pruned by time sketches or secondary index"),
		CoalescedReads:    r.Counter("waterwheel_chunk_coalesced_reads_total", "gap-coalesced file accesses for leaf ranges"),
		BytesRead:         r.Counter("waterwheel_chunk_bytes_read_total", "chunk bytes fetched from the DFS"),
		HeaderHits:        r.Counter(`waterwheel_cache_hits_total{unit="header"}`, "query-server cache hits by unit"),
		HeaderMisses:      r.Counter(`waterwheel_cache_misses_total{unit="header"}`, "query-server cache misses by unit"),
		LeafHits:          r.Counter(`waterwheel_cache_hits_total{unit="leaf"}`, "query-server cache hits by unit"),
		LeafMisses:        r.Counter(`waterwheel_cache_misses_total{unit="leaf"}`, "query-server cache misses by unit"),
		HeaderEvictions:   r.Counter(`waterwheel_cache_evictions_total{unit="header"}`, "query-server cache evictions by unit"),
		LeafEvictions:     r.Counter(`waterwheel_cache_evictions_total{unit="leaf"}`, "query-server cache evictions by unit"),
		SingleFlightDedup: r.Counter("waterwheel_chunk_singleflight_dedup_total", "chunk reads deduplicated into a concurrent identical read"),
		InflightReads:     r.Gauge("waterwheel_chunk_inflight_reads", "DFS reads currently outstanding on query servers"),
		SubQueryNanos:     r.Histogram("waterwheel_chunk_subquery_seconds", "chunk subquery execution latency"),
		AggPushdownLeaves: r.Counter("waterwheel_agg_pushdown_leaves_total", "leaves answered from header pre-aggregates without a body read"),
		AggScannedLeaves:  r.Counter("waterwheel_agg_scanned_leaves_total", "leaves aggregate subqueries had to decode"),
		AggBytesSaved:     r.Gauge("waterwheel_agg_pushdown_bytes_saved_total", "leaf-body bytes aggregation pushdown avoided reading"),
	}
}

// Server is a query server: it executes subqueries on data chunks,
// keeping frequently accessed headers and leaves in its cache (§IV-B).
type Server struct {
	cfg ServerConfig
	fs  *dfs.FS
	ms  *meta.Server
	// m mirrors cfg.Metrics, defaulted to a no-op set so the read path
	// never branches on nil.
	m     *ServerMetrics
	cache *lru.Cache
	down  atomic.Bool

	// workers is the resolved ServerConfig.Workers; inflight is the
	// read-concurrency semaphore sized from InflightReads; flights dedups
	// concurrent identical header/extent fetches across subqueries.
	workers  int
	inflight chan struct{}
	flights  lru.FlightGroup

	executed atomic.Int64
}

// NewServer creates a query server reading chunks from fs with metadata
// from ms.
func NewServer(cfg ServerConfig, fs *dfs.FS, ms *meta.Server) *Server {
	m := cfg.Metrics
	if m == nil {
		m = &ServerMetrics{}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	inflight := cfg.InflightReads
	if inflight <= 0 {
		inflight = 4
	}
	s := &Server{
		cfg: cfg, fs: fs, ms: ms, m: m, cache: lru.New(cfg.CacheBytes),
		workers: workers, inflight: make(chan struct{}, inflight),
	}
	s.cache.SetEvictHook(func(key string, _ int64) {
		// Cache keys are "h<chunk>" for headers and "l<chunk>:<leaf>".
		if len(key) > 0 && key[0] == 'h' {
			m.HeaderEvictions.Inc()
		} else {
			m.LeafEvictions.Inc()
		}
	})
	return s
}

// ID returns the server id.
func (s *Server) ID() int { return s.cfg.ID }

// Node returns the hosting cluster node.
func (s *Server) Node() int { return s.cfg.Node }

// Workers returns the server's subquery parallelism — how many dispatch
// goroutines the coordinator runs against it.
func (s *Server) Workers() int { return s.workers }

// ClearCache drops every cached header and leaf — for cold-cache
// benchmarks and experiments.
func (s *Server) ClearCache() { s.cache.Clear() }

// Executed returns the number of subqueries this server has run.
func (s *Server) Executed() int64 { return s.executed.Load() }

// CacheMetrics exposes the LRU counters.
func (s *Server) CacheMetrics() lru.Metrics { return s.cache.Metrics() }

// EvictChunk drops every cached unit of a chunk — header, leaves, and
// coalesced extents — returning the number of entries removed. Retirement
// calls this on every query server after the metadata drop so no future
// subquery is served stale bytes of a deleted file.
func (s *Server) EvictChunk(id model.ChunkID) int {
	hk := headerKey(id)
	lp := leafKey(id, 0)
	lp = lp[:len(lp)-1] // "l<chunk>:" prefix
	ep := extentKey(id, 0, 0)
	ep = ep[:len(ep)-3] // "e<chunk>:" prefix
	return s.cache.RemoveFunc(func(key string) bool {
		return key == hk ||
			(len(key) > len(lp) && key[:len(lp)] == lp) ||
			(len(key) > len(ep) && key[:len(ep)] == ep)
	})
}

// Fail injects a failure: subsequent subqueries error until Recover.
func (s *Server) Fail() { s.down.Store(true) }

// Recover clears an injected failure.
func (s *Server) Recover() { s.down.Store(false) }

// Down reports whether a failure is injected.
func (s *Server) Down() bool { return s.down.Load() }

// headerKey and leafKey build cache keys ("h<chunk>", "l<chunk>:<leaf>")
// with strconv appends into stack buffers — these run once per wanted leaf
// on every subquery, and fmt.Sprintf's interface boxing made them the
// dominant allocation on the cache-hit path. The single string conversion
// that remains is the map key the cache needs anyway.
func headerKey(id model.ChunkID) string {
	var buf [21]byte // 'h' + max uint64 digits
	b := append(buf[:0], 'h')
	b = strconv.AppendUint(b, uint64(id), 10)
	return string(b)
}

func leafKey(id model.ChunkID, i int) string {
	var buf [41]byte // 'l' + uint64 + ':' + int
	b := append(buf[:0], 'l')
	b = strconv.AppendUint(b, uint64(id), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(i), 10)
	return string(b)
}

func extentKey(id model.ChunkID, off, length int64) string {
	var buf [62]byte // 'e' + uint64 + ':' + int64 + ':' + int64
	b := append(buf[:0], 'e')
	b = strconv.AppendUint(b, uint64(id), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, off, 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, length, 10)
	return string(b)
}

// readAt is the server's single DFS read site. It bounds the server's
// outstanding reads with the inflight semaphore and counts the bytes
// actually transferred — so the byte metric agrees with per-result
// accounting on every path, including the header fallback's 12-byte peek.
func (s *Server) readAt(path string, off, length int64) ([]byte, error) {
	s.inflight <- struct{}{}
	s.m.InflightReads.Add(1)
	b, _, err := s.fs.ReadAt(path, off, length, s.cfg.Node)
	s.m.InflightReads.Add(-1)
	<-s.inflight
	if err != nil {
		if errors.Is(err, dfs.ErrNotFound) {
			// Chunk files only vanish through retirement; surface the typed
			// error so the coordinator can redispatch or drop the subquery
			// instead of failing the query on a raw DFS error.
			return nil, fmt.Errorf("%w: %v", ErrRetired, err)
		}
		return nil, err
	}
	s.m.BytesRead.Add(int64(len(b)))
	return b, nil
}

// headerFetch carries a fetched header plus the bytes its flight leader
// read (zero for followers, whose bytes were counted by the leader).
type headerFetch struct {
	h     *chunk.Header
	bytes int64
}

// header returns the parsed chunk header, from cache or the file system,
// plus the DFS bytes this call caused to be read. Concurrent misses of
// the same header share one fetch via the flight group.
func (s *Server) header(ci meta.ChunkInfo) (*chunk.Header, int64, bool, error) {
	key := headerKey(ci.ID)
	if v, ok := s.cache.Get(key); ok {
		s.m.HeaderHits.Inc()
		return v.(*chunk.Header), 0, true, nil
	}
	s.m.HeaderMisses.Inc()
	v, err, shared := s.flights.Do(key, func() (any, error) {
		var read int64
		hlen := int64(ci.HeaderLen)
		if hlen <= 0 {
			// Fallback: peek, then read (two accesses; only for foreign
			// chunks registered without header metadata).
			prefix, err := s.readAt(ci.Path, 0, 12)
			if err != nil {
				return nil, err
			}
			read += int64(len(prefix))
			n, err := chunk.PeekHeaderLen(prefix)
			if err != nil {
				return nil, err
			}
			hlen = int64(n)
		}
		buf, err := s.readAt(ci.Path, 0, hlen)
		if err != nil {
			return nil, err
		}
		read += int64(len(buf))
		h, err := chunk.ParseHeader(buf)
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, h, hlen)
		return headerFetch{h: h, bytes: read}, nil
	})
	if err != nil {
		return nil, 0, false, err
	}
	hf := v.(headerFetch)
	if shared {
		s.m.SingleFlightDedup.Inc()
		return hf.h, 0, false, nil
	}
	return hf.h, hf.bytes, false, nil
}

// ExecuteSubQuery runs one chunk subquery: select leaves by key range and
// time sketches, read uncached leaves (coalescing adjacent extents into
// single file accesses), and scan.
func (s *Server) ExecuteSubQuery(sq *model.SubQuery) (*model.Result, error) {
	return s.ExecuteSubQueryTraced(sq, nil)
}

// ExecuteSubQueryTraced runs one chunk subquery, attaching per-stage
// child spans (chunk_open, leaf_read, scan) to sp when tracing. A nil sp
// costs only nil checks.
func (s *Server) ExecuteSubQueryTraced(sq *model.SubQuery, sp *telemetry.Span) (*model.Result, error) {
	if s.down.Load() {
		return nil, ErrServerDown
	}
	s.executed.Add(1)
	s.m.SubQueries.Inc()
	start := time.Now()
	res := &model.Result{QueryID: sq.QueryID}
	// Planned subqueries carry the chunk's file metadata; only hand-built
	// ones pay a metadata-server round trip here.
	ci := meta.ChunkInfo{ID: sq.Chunk, Path: sq.ChunkPath, HeaderLen: sq.ChunkHeaderLen}
	if ci.Path == "" {
		info, ok := s.ms.Chunk(sq.Chunk)
		if !ok {
			return nil, fmt.Errorf("queryexec: unknown chunk %d", sq.Chunk)
		}
		ci = info
	}
	openSp := sp.StartChild("chunk_open")
	h, hbytes, hit, err := s.header(ci)
	if err != nil {
		openSp.SetStr("error", err.Error())
		openSp.End()
		return nil, err
	}
	if hit {
		res.CacheHits++
		openSp.SetInt("cache_hit", 1)
	} else {
		// hbytes is what the fetch actually transferred (header, plus the
		// 12-byte peek on the fallback path; zero when a concurrent
		// subquery's fetch was shared), already counted in the byte metric
		// at the read site — so metric and result accounting agree.
		res.BytesRead += hbytes
		openSp.SetInt("header_bytes", hbytes)
	}
	openSp.End()
	// When the chunk carries a secondary attribute index and the filter
	// pins that attribute to a value, prune leaves by it too (§VIII).
	var secEQ *uint64
	if h.HasSecondary {
		if v, ok := sq.Filter.RequiredPayloadU64EQ(h.SecondaryOffset); ok {
			secEQ = &v
		}
	}
	leaves, pruned := h.SelectLeavesFor(sq.Region.Keys, sq.Region.Times, s.cfg.UseBloom, secEQ)
	res.LeavesSkipped += pruned
	s.m.LeavesBloomSkip.Add(int64(pruned))

	// Aggregate subqueries fold into res.Agg instead of collecting tuples,
	// answering covered leaves from header pre-aggregates where possible.
	if sq.Agg != nil {
		if err := s.executeAgg(sq, ci, h, leaves, res, sp); err != nil {
			return nil, err
		}
		s.m.LeavesRead.Add(int64(res.LeavesRead))
		s.m.SubQueryNanos.Observe(time.Since(start))
		return res, nil
	}

	bodies, err := s.fetchLeafBodies(ci, h, leaves, res, sp)
	if err != nil {
		return nil, err
	}

	scanSp := sp.StartChild("scan")
	cols := chunk.BorrowColumns()
	defer chunk.ReturnColumns(cols)
	for _, li := range leaves {
		res.LeavesRead++
		// Matched payloads alias the (cached, shared) leaf body during the
		// scan and are un-aliased afterwards into one arena per leaf — a
		// single allocation instead of one per tuple.
		arenaStart := len(res.Tuples)
		payloadBytes := 0
		err := h.ScanLeafColsWith(cols, li, bodies[li], sq.Region.Keys, sq.Region.Times, sq.Filter, func(k model.Key, ts model.Timestamp, p []byte) bool {
			res.Tuples = append(res.Tuples, model.Tuple{Key: k, Time: ts, Payload: p})
			payloadBytes += len(p)
			return sq.Limit <= 0 || len(res.Tuples) < sq.Limit
		})
		if err != nil {
			err = fmt.Errorf("queryexec: chunk %d leaf %d: %w", ci.ID, li, err)
			scanSp.SetStr("error", err.Error())
			scanSp.End()
			return nil, err
		}
		if len(res.Tuples) > arenaStart {
			var arena []byte
			if payloadBytes > 0 {
				arena = make([]byte, 0, payloadBytes)
			}
			for i := arenaStart; i < len(res.Tuples); i++ {
				t := &res.Tuples[i]
				if len(t.Payload) == 0 {
					// Empty slices still point into the body; drop the
					// reference so results never pin leaf buffers.
					t.Payload = nil
					continue
				}
				off := len(arena)
				arena = append(arena, t.Payload...)
				t.Payload = arena[off:len(arena):len(arena)]
			}
		}
		if sq.Limit > 0 && len(res.Tuples) >= sq.Limit {
			break
		}
	}
	scanSp.SetInt("leaves", int64(res.LeavesRead))
	scanSp.SetInt("bloom_skipped", int64(res.LeavesSkipped))
	scanSp.SetInt("tuples", int64(len(res.Tuples)))
	scanSp.End()
	s.m.LeavesRead.Add(int64(res.LeavesRead))
	s.m.SubQueryNanos.Observe(time.Since(start))
	return res, nil
}

// fetchLeafBodies returns the bodies of the given leaves (indexed by leaf
// number), reading uncached ones from the DFS with extent coalescing and
// single-flight dedup, and charging bytes and cache counters to res.
func (s *Server) fetchLeafBodies(ci meta.ChunkInfo, h *chunk.Header, leaves []int, res *model.Result, sp *telemetry.Span) ([][]byte, error) {
	// Partition wanted leaves into cached and missing, then coalesce
	// missing extents into ranged reads. Gaps (cached or pruned leaves)
	// up to maxGapBytes are read through rather than split: at HDFS-like
	// access costs, an extra open is dearer than a few hundred KB of
	// sequential bytes, so pruning must not fragment the read pattern.
	const maxGapBytes = 512 << 10
	bodies := make([][]byte, len(h.Dir))
	var missing []int
	for _, li := range leaves {
		if v, ok := s.cache.Get(leafKey(ci.ID, li)); ok {
			bodies[li] = v.([]byte)
			res.CacheHits++
			s.m.LeafHits.Inc()
		} else {
			missing = append(missing, li)
			s.m.LeafMisses.Inc()
		}
	}
	// Coalesce the missing leaves into extents, then issue the extents to
	// the DFS concurrently (bounded by the server-wide inflight
	// semaphore). Each extent is single-flighted, so concurrent subqueries
	// missing the same bytes ride one read that fills the cache for all.
	type extent struct {
		lo, hi      int // index range into missing
		off, length int64
	}
	var exts []extent
	for i := 0; i < len(missing); {
		j := i
		for j+1 < len(missing) {
			prev, next := h.Dir[missing[j]], h.Dir[missing[j+1]]
			if next.Offset-(prev.Offset+prev.Length) > maxGapBytes {
				break
			}
			j++
		}
		first, last := missing[i], missing[j]
		off := h.Dir[first].Offset
		exts = append(exts, extent{
			lo: i, hi: j, off: off,
			length: h.Dir[last].Offset + h.Dir[last].Length - off,
		})
		i = j + 1
	}
	// readExtent fetches one extent (or joins an identical in-flight
	// fetch) and slices it into bodies; extents cover disjoint leaves, so
	// concurrent calls write disjoint bodies indices. It returns the bytes
	// this subquery caused to be read — zero for a shared flight.
	readExtent := func(e extent) (int64, bool, error) {
		v, err, shared := s.flights.Do(extentKey(ci.ID, e.off, e.length), func() (any, error) {
			b, err := s.readAt(ci.Path, e.off, e.length)
			if err != nil {
				return nil, err
			}
			for k := e.lo; k <= e.hi; k++ {
				li := missing[k]
				lb := b[h.Dir[li].Offset-e.off : h.Dir[li].Offset-e.off+h.Dir[li].Length]
				s.cache.Put(leafKey(ci.ID, li), lb, int64(len(lb)))
			}
			return b, nil
		})
		if err != nil {
			return 0, shared, err
		}
		b := v.([]byte)
		for k := e.lo; k <= e.hi; k++ {
			li := missing[k]
			bodies[li] = b[h.Dir[li].Offset-e.off : h.Dir[li].Offset-e.off+h.Dir[li].Length]
		}
		if shared {
			s.m.SingleFlightDedup.Inc()
			return 0, true, nil
		}
		s.m.CoalescedReads.Inc()
		return e.length, false, nil
	}
	readSp := sp.StartChild("leaf_read")
	coalesced, dedups := 0, 0
	if len(exts) == 1 {
		// The common single-extent case stays on this goroutine.
		n, shared, err := readExtent(exts[0])
		if err != nil {
			readSp.SetStr("error", err.Error())
			readSp.End()
			return nil, err
		}
		res.BytesRead += n
		if shared {
			dedups++
		} else {
			coalesced++
		}
	} else if len(exts) > 1 {
		var wg sync.WaitGroup
		bytesOf := make([]int64, len(exts))
		sharedOf := make([]bool, len(exts))
		errOf := make([]error, len(exts))
		for i, e := range exts {
			wg.Add(1)
			go func(i int, e extent) {
				defer wg.Done()
				bytesOf[i], sharedOf[i], errOf[i] = readExtent(e)
			}(i, e)
		}
		wg.Wait()
		for i := range exts {
			if errOf[i] != nil {
				readSp.SetStr("error", errOf[i].Error())
				readSp.End()
				return nil, errOf[i]
			}
			res.BytesRead += bytesOf[i]
			if sharedOf[i] {
				dedups++
			} else {
				coalesced++
			}
		}
	}
	readSp.SetInt("reads", int64(coalesced))
	readSp.SetInt("dedup", int64(dedups))
	readSp.SetInt("leaves_missing", int64(len(missing)))
	readSp.SetInt("bytes", res.BytesRead)
	readSp.End()
	return bodies, nil
}

// executeAgg runs an aggregate subquery: leaves whose keys are fully
// inside the query range are answered from the header — the leaf count for
// COUNT, the pre-aggregate buckets otherwise — without reading their
// bodies. Only boundary leaves (and leaves the header can't answer) are
// fetched and column-scanned, with the bucket-folded window excluded.
func (s *Server) executeAgg(sq *model.SubQuery, ci meta.ChunkInfo, h *chunk.Header, leaves []int, res *model.Result, sp *telemetry.Span) error {
	spec := sq.Agg
	agg := &model.AggPartial{}
	res.Agg = agg
	kr, tr := sq.Region.Keys, sq.Region.Times
	// exclude[li] is the bucket window already folded for a partially
	// covered leaf; scan[li] marks leaves that still need their body.
	var scan []int
	exclude := make(map[int]model.TimeRange)
	var savedBytes int64
	for _, li := range leaves {
		d := h.Dir[li]
		if d.Count == 0 {
			continue
		}
		// Pushdown needs exact leaf key bounds (v2 only), no filter, and —
		// for value aggregates — a pre-aggregate block over the queried
		// field. COUNT folds bucket/directory counts regardless of field.
		pushable := sq.Filter == nil && h.Format == chunk.FormatV2 &&
			kr.Lo <= h.LeafKeys[li].Lo && h.LeafKeys[li].Hi <= kr.Hi &&
			(spec.CountOnly || (h.HasAgg && h.AggField == spec.Field))
		if pushable {
			if tr.Lo <= d.MinT && d.MaxT <= tr.Hi {
				// Whole leaf matches: exact from the directory count alone
				// for COUNT, else from folding every bucket.
				if spec.CountOnly {
					agg.Count += uint64(d.Count)
					res.AggPushdown++
					savedBytes += d.Length
					continue
				}
				if h.FoldLeafAggAll(li, false, agg) {
					res.AggPushdown++
					savedBytes += d.Length
					continue
				}
			} else if w, ok := h.FoldLeafAgg(li, tr, spec.CountOnly, agg); ok {
				// Partially covered: buckets inside tr are folded; the scan
				// skips tuples in that window.
				exclude[li] = w
			}
		}
		scan = append(scan, li)
	}
	res.LeavesSkipped = len(leaves) - len(scan) - res.AggPushdown + res.LeavesSkipped
	s.m.AggPushdownLeaves.Add(int64(res.AggPushdown))
	s.m.AggBytesSaved.Add(float64(savedBytes))
	if len(scan) > 0 {
		bodies, err := s.fetchLeafBodies(ci, h, scan, res, sp)
		if err != nil {
			return err
		}
		scanSp := sp.StartChild("agg_scan")
		cols := chunk.BorrowColumns()
		defer chunk.ReturnColumns(cols)
		for _, li := range scan {
			res.LeavesRead++
			var ex *model.TimeRange
			if w, ok := exclude[li]; ok {
				ex = &w
			}
			if err := h.AggregateLeaf(li, bodies[li], cols, kr, tr, sq.Filter, ex, spec.Field, spec.CountOnly, agg); err != nil {
				err = fmt.Errorf("queryexec: chunk %d leaf %d: %w", ci.ID, li, err)
				scanSp.SetStr("error", err.Error())
				scanSp.End()
				return err
			}
		}
		scanSp.SetInt("leaves", int64(res.LeavesRead))
		scanSp.End()
		s.m.AggScannedLeaves.Add(int64(len(scan)))
	}
	sp.SetInt("agg_pushdown", int64(res.AggPushdown))
	return nil
}
