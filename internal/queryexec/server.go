// Package queryexec implements Waterwheel's query path (paper §IV): the
// query servers that execute subqueries over flushed chunks with selective
// leaf reads, bloom-filter pruning and an LRU cache; the subquery dispatch
// policies (LADA and the three baselines of §VI-C2); and the query
// coordinator that decomposes user queries via the metadata R-tree, fans
// the subqueries out across indexing and query servers, and merges the
// results — re-dispatching on query-server failure (§V).
package queryexec

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"waterwheel/internal/chunk"
	"waterwheel/internal/dfs"
	"waterwheel/internal/lru"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
)

// ErrServerDown is returned by a query server with an injected failure.
var ErrServerDown = errors.New("queryexec: query server down")

// ServerConfig configures a query server.
type ServerConfig struct {
	// ID is the query-server index.
	ID int
	// Node is the cluster node hosting the server — the basis of chunk
	// locality decisions.
	Node int
	// CacheBytes is the LRU budget (paper: 1 GB per query server).
	CacheBytes int64
	// UseBloom enables time-sketch leaf pruning (ablation switch).
	UseBloom bool
	// Metrics holds telemetry handles, typically shared across every
	// query server of a deployment. Nil disables instrumentation.
	Metrics *ServerMetrics
}

// ServerMetrics are the telemetry handles the chunk-read path feeds. All
// handles are nil-safe; the zero value is a no-op.
type ServerMetrics struct {
	SubQueries      *telemetry.Counter
	LeavesRead      *telemetry.Counter
	LeavesBloomSkip *telemetry.Counter
	CoalescedReads  *telemetry.Counter
	BytesRead       *telemetry.Counter
	HeaderHits      *telemetry.Counter
	HeaderMisses    *telemetry.Counter
	LeafHits        *telemetry.Counter
	LeafMisses      *telemetry.Counter
	HeaderEvictions *telemetry.Counter
	LeafEvictions   *telemetry.Counter
	SubQueryNanos   *telemetry.Histogram
}

// NewServerMetrics registers the chunk-read metric set on r (nil r gives
// all-nil, no-op handles).
func NewServerMetrics(r *telemetry.Registry) *ServerMetrics {
	return &ServerMetrics{
		SubQueries:      r.Counter("waterwheel_chunk_subqueries_total", "chunk subqueries executed by query servers"),
		LeavesRead:      r.Counter("waterwheel_chunk_leaves_read_total", "chunk leaves scanned"),
		LeavesBloomSkip: r.Counter("waterwheel_chunk_leaves_bloom_skipped_total", "chunk leaves pruned by time sketches or secondary index"),
		CoalescedReads:  r.Counter("waterwheel_chunk_coalesced_reads_total", "gap-coalesced file accesses for leaf ranges"),
		BytesRead:       r.Counter("waterwheel_chunk_bytes_read_total", "chunk bytes fetched from the DFS"),
		HeaderHits:      r.Counter(`waterwheel_cache_hits_total{unit="header"}`, "query-server cache hits by unit"),
		HeaderMisses:    r.Counter(`waterwheel_cache_misses_total{unit="header"}`, "query-server cache misses by unit"),
		LeafHits:        r.Counter(`waterwheel_cache_hits_total{unit="leaf"}`, "query-server cache hits by unit"),
		LeafMisses:      r.Counter(`waterwheel_cache_misses_total{unit="leaf"}`, "query-server cache misses by unit"),
		HeaderEvictions: r.Counter(`waterwheel_cache_evictions_total{unit="header"}`, "query-server cache evictions by unit"),
		LeafEvictions:   r.Counter(`waterwheel_cache_evictions_total{unit="leaf"}`, "query-server cache evictions by unit"),
		SubQueryNanos:   r.Histogram("waterwheel_chunk_subquery_seconds", "chunk subquery execution latency"),
	}
}

// Server is a query server: it executes subqueries on data chunks,
// keeping frequently accessed headers and leaves in its cache (§IV-B).
type Server struct {
	cfg ServerConfig
	fs  *dfs.FS
	ms  *meta.Server
	// m mirrors cfg.Metrics, defaulted to a no-op set so the read path
	// never branches on nil.
	m     *ServerMetrics
	cache *lru.Cache
	down  atomic.Bool

	executed atomic.Int64
}

// NewServer creates a query server reading chunks from fs with metadata
// from ms.
func NewServer(cfg ServerConfig, fs *dfs.FS, ms *meta.Server) *Server {
	m := cfg.Metrics
	if m == nil {
		m = &ServerMetrics{}
	}
	s := &Server{cfg: cfg, fs: fs, ms: ms, m: m, cache: lru.New(cfg.CacheBytes)}
	s.cache.SetEvictHook(func(key string, _ int64) {
		// Cache keys are "h<chunk>" for headers and "l<chunk>:<leaf>".
		if len(key) > 0 && key[0] == 'h' {
			m.HeaderEvictions.Inc()
		} else {
			m.LeafEvictions.Inc()
		}
	})
	return s
}

// ID returns the server id.
func (s *Server) ID() int { return s.cfg.ID }

// Node returns the hosting cluster node.
func (s *Server) Node() int { return s.cfg.Node }

// Executed returns the number of subqueries this server has run.
func (s *Server) Executed() int64 { return s.executed.Load() }

// CacheMetrics exposes the LRU counters.
func (s *Server) CacheMetrics() lru.Metrics { return s.cache.Metrics() }

// Fail injects a failure: subsequent subqueries error until Recover.
func (s *Server) Fail() { s.down.Store(true) }

// Recover clears an injected failure.
func (s *Server) Recover() { s.down.Store(false) }

// Down reports whether a failure is injected.
func (s *Server) Down() bool { return s.down.Load() }

// headerKey and leafKey build cache keys ("h<chunk>", "l<chunk>:<leaf>")
// with strconv appends into stack buffers — these run once per wanted leaf
// on every subquery, and fmt.Sprintf's interface boxing made them the
// dominant allocation on the cache-hit path. The single string conversion
// that remains is the map key the cache needs anyway.
func headerKey(id model.ChunkID) string {
	var buf [21]byte // 'h' + max uint64 digits
	b := append(buf[:0], 'h')
	b = strconv.AppendUint(b, uint64(id), 10)
	return string(b)
}

func leafKey(id model.ChunkID, i int) string {
	var buf [41]byte // 'l' + uint64 + ':' + int
	b := append(buf[:0], 'l')
	b = strconv.AppendUint(b, uint64(id), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(i), 10)
	return string(b)
}

// header returns the parsed chunk header, from cache or the file system.
func (s *Server) header(ci meta.ChunkInfo) (*chunk.Header, bool, error) {
	if v, ok := s.cache.Get(headerKey(ci.ID)); ok {
		s.m.HeaderHits.Inc()
		return v.(*chunk.Header), true, nil
	}
	s.m.HeaderMisses.Inc()
	hlen := int64(ci.HeaderLen)
	if hlen <= 0 {
		// Fallback: peek, then read (two accesses; only for foreign chunks
		// registered without header metadata).
		prefix, _, err := s.fs.ReadAt(ci.Path, 0, 12, s.cfg.Node)
		if err != nil {
			return nil, false, err
		}
		n, err := chunk.PeekHeaderLen(prefix)
		if err != nil {
			return nil, false, err
		}
		hlen = int64(n)
	}
	buf, _, err := s.fs.ReadAt(ci.Path, 0, hlen, s.cfg.Node)
	if err != nil {
		return nil, false, err
	}
	h, err := chunk.ParseHeader(buf)
	if err != nil {
		return nil, false, err
	}
	s.cache.Put(headerKey(ci.ID), h, hlen)
	return h, false, nil
}

// ExecuteSubQuery runs one chunk subquery: select leaves by key range and
// time sketches, read uncached leaves (coalescing adjacent extents into
// single file accesses), and scan.
func (s *Server) ExecuteSubQuery(sq *model.SubQuery) (*model.Result, error) {
	return s.ExecuteSubQueryTraced(sq, nil)
}

// ExecuteSubQueryTraced runs one chunk subquery, attaching per-stage
// child spans (chunk_open, leaf_read, scan) to sp when tracing. A nil sp
// costs only nil checks.
func (s *Server) ExecuteSubQueryTraced(sq *model.SubQuery, sp *telemetry.Span) (*model.Result, error) {
	if s.down.Load() {
		return nil, ErrServerDown
	}
	s.executed.Add(1)
	s.m.SubQueries.Inc()
	start := time.Now()
	res := &model.Result{QueryID: sq.QueryID}
	ci, ok := s.ms.Chunk(sq.Chunk)
	if !ok {
		return nil, fmt.Errorf("queryexec: unknown chunk %d", sq.Chunk)
	}
	openSp := sp.StartChild("chunk_open")
	h, hit, err := s.header(ci)
	if err != nil {
		openSp.SetStr("error", err.Error())
		openSp.End()
		return nil, err
	}
	if hit {
		res.CacheHits++
		openSp.SetInt("cache_hit", 1)
	} else {
		// Header fetches count toward the byte metric like leaf reads do,
		// so the Prometheus counter matches per-query BytesRead accounting.
		s.m.BytesRead.Add(int64(h.HeaderLen))
		res.BytesRead += int64(h.HeaderLen)
		openSp.SetInt("header_bytes", int64(h.HeaderLen))
	}
	openSp.End()
	// When the chunk carries a secondary attribute index and the filter
	// pins that attribute to a value, prune leaves by it too (§VIII).
	var secEQ *uint64
	if h.HasSecondary {
		if v, ok := sq.Filter.RequiredPayloadU64EQ(h.SecondaryOffset); ok {
			secEQ = &v
		}
	}
	leaves, pruned := h.SelectLeavesFor(sq.Region.Keys, sq.Region.Times, s.cfg.UseBloom, secEQ)
	res.LeavesSkipped += pruned
	s.m.LeavesBloomSkip.Add(int64(pruned))

	// Partition wanted leaves into cached and missing, then coalesce
	// missing extents into ranged reads. Gaps (cached or pruned leaves)
	// up to maxGapBytes are read through rather than split: at HDFS-like
	// access costs, an extra open is dearer than a few hundred KB of
	// sequential bytes, so pruning must not fragment the read pattern.
	const maxGapBytes = 512 << 10
	bodies := make(map[int][]byte, len(leaves))
	var missing []int
	for _, li := range leaves {
		if v, ok := s.cache.Get(leafKey(ci.ID, li)); ok {
			bodies[li] = v.([]byte)
			res.CacheHits++
			s.m.LeafHits.Inc()
		} else {
			missing = append(missing, li)
			s.m.LeafMisses.Inc()
		}
	}
	readSp := sp.StartChild("leaf_read")
	coalesced := 0
	for i := 0; i < len(missing); {
		j := i
		for j+1 < len(missing) {
			prev, next := h.Dir[missing[j]], h.Dir[missing[j+1]]
			if next.Offset-(prev.Offset+prev.Length) > maxGapBytes {
				break
			}
			j++
		}
		first, last := missing[i], missing[j]
		off := h.Dir[first].Offset
		length := h.Dir[last].Offset + h.Dir[last].Length - off
		buf, _, err := s.fs.ReadAt(ci.Path, off, length, s.cfg.Node)
		if err != nil {
			readSp.SetStr("error", err.Error())
			readSp.End()
			return nil, err
		}
		coalesced++
		s.m.CoalescedReads.Inc()
		s.m.BytesRead.Add(length)
		res.BytesRead += length
		for k := i; k <= j; k++ {
			li := missing[k]
			b := buf[h.Dir[li].Offset-off : h.Dir[li].Offset-off+h.Dir[li].Length]
			bodies[li] = b
			s.cache.Put(leafKey(ci.ID, li), b, int64(len(b)))
		}
		i = j + 1
	}
	readSp.SetInt("reads", int64(coalesced))
	readSp.SetInt("leaves_missing", int64(len(missing)))
	readSp.SetInt("bytes", res.BytesRead)
	readSp.End()

	scanSp := sp.StartChild("scan")
	for _, li := range leaves {
		res.LeavesRead++
		err := chunk.ScanLeaf(bodies[li], sq.Region.Keys, sq.Region.Times, sq.Filter, func(t *model.Tuple) bool {
			cp := *t
			cp.Payload = append([]byte(nil), t.Payload...)
			res.Tuples = append(res.Tuples, cp)
			return sq.Limit <= 0 || len(res.Tuples) < sq.Limit
		})
		if err != nil {
			err = fmt.Errorf("queryexec: chunk %d leaf %d: %w", ci.ID, li, err)
			scanSp.SetStr("error", err.Error())
			scanSp.End()
			return nil, err
		}
		if sq.Limit > 0 && len(res.Tuples) >= sq.Limit {
			break
		}
	}
	scanSp.SetInt("leaves", int64(res.LeavesRead))
	scanSp.SetInt("bloom_skipped", int64(res.LeavesSkipped))
	scanSp.SetInt("tuples", int64(len(res.Tuples)))
	scanSp.End()
	s.m.LeavesRead.Add(int64(res.LeavesRead))
	s.m.SubQueryNanos.Observe(time.Since(start))
	return res, nil
}
