package queryexec

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/ingest"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// testCluster wires indexing servers, query servers, a DFS and a
// coordinator in-process.
type testCluster struct {
	fs    *dfs.FS
	ms    *meta.Server
	is    []*ingest.Server
	qs    []*Server
	coord *Coordinator
}

func newCluster(t *testing.T, nIdx, nQry, nNodes int) *testCluster {
	t.Helper()
	fs := dfs.New(dfs.Config{Nodes: nNodes, Replication: 2, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(nIdx)
	c := &testCluster{fs: fs, ms: ms}
	c.coord = NewCoordinator(CoordinatorConfig{LateDeltaMillis: 1000}, ms, fs)
	for i := 0; i < nIdx; i++ {
		srv := ingest.NewServer(ingest.Config{
			ID: i, Keys: ms.Schema().IntervalOf(i), ChunkBytes: 1 << 30, Leaves: 16,
		}, fs, ms, i%nNodes)
		c.is = append(c.is, srv)
		c.coord.SetMemExecutor(i, srv)
	}
	for i := 0; i < nQry; i++ {
		qs := NewServer(ServerConfig{ID: i, Node: i % nNodes, CacheBytes: 1 << 20, UseBloom: true}, fs, ms)
		c.qs = append(c.qs, qs)
		c.coord.AddQueryServer(qs)
	}
	return c
}

// ingestRoundRobin pushes tuples through the schema router.
func (c *testCluster) ingest(tuples []model.Tuple) {
	schema := c.ms.Schema()
	for _, tp := range tuples {
		c.is[schema.ServerFor(tp.Key)].Insert(tp)
	}
	for i, srv := range c.is {
		min, keys, ok := srv.MemBounds()
		c.ms.ReportLive(i, min, keys, !ok)
	}
}

func (c *testCluster) flushAll() {
	for _, srv := range c.is {
		srv.FlushAll()
	}
}

func seqTuples(n int, keyStep uint64, t0 int64) []model.Tuple {
	out := make([]model.Tuple, n)
	for i := range out {
		out[i] = model.Tuple{
			Key:     model.Key(uint64(i) * keyStep),
			Time:    model.Timestamp(t0 + int64(i)),
			Payload: []byte{byte(i)},
		}
	}
	return out
}

func TestQueryFreshDataOnly(t *testing.T) {
	c := newCluster(t, 2, 2, 2)
	c.ingest(seqTuples(100, 1<<57, 1000)) // spread across both servers
	res, err := c.coord.Execute(model.Query{
		Keys:  model.FullKeyRange(),
		Times: model.FullTimeRange(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 100 {
		t.Fatalf("got %d tuples, want 100", len(res.Tuples))
	}
	// Fresh-only queries touch no chunks.
	if res.BytesRead != 0 {
		t.Errorf("read %d chunk bytes for fresh data", res.BytesRead)
	}
}

func TestQueryHistoricalOnly(t *testing.T) {
	c := newCluster(t, 2, 2, 2)
	c.ingest(seqTuples(200, 1<<56, 1000))
	c.flushAll()
	res, err := c.coord.Execute(model.Query{
		Keys:  model.FullKeyRange(),
		Times: model.FullTimeRange(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 200 {
		t.Fatalf("got %d tuples, want 200", len(res.Tuples))
	}
	if res.BytesRead == 0 {
		t.Error("historical query read no chunk bytes")
	}
}

func TestQuerySpansFreshAndHistorical(t *testing.T) {
	c := newCluster(t, 2, 2, 2)
	c.ingest(seqTuples(100, 1<<56, 1000))
	c.flushAll()
	c.ingest(seqTuples(50, 1<<56, 5000)) // same keys, later times, unflushed
	res, err := c.coord.Execute(model.Query{
		Keys:  model.FullKeyRange(),
		Times: model.FullTimeRange(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 150 {
		t.Fatalf("got %d tuples, want 150", len(res.Tuples))
	}
	// Results sorted by (key, time).
	for i := 1; i < len(res.Tuples); i++ {
		a, b := &res.Tuples[i-1], &res.Tuples[i]
		if b.Key < a.Key || (b.Key == a.Key && b.Time < a.Time) {
			t.Fatal("results not sorted")
		}
	}
}

func TestQueryRangesRespected(t *testing.T) {
	c := newCluster(t, 2, 2, 2)
	tuples := seqTuples(300, 1000, 1000)
	c.ingest(tuples)
	c.flushAll()
	c.ingest(seqTuples(100, 1000, 10_000))
	kr := model.KeyRange{Lo: 50_000, Hi: 150_000}
	tr := model.TimeRange{Lo: 1100, Hi: 1250}
	res, err := c.coord.Execute(model.Query{Keys: kr, Times: tr, Filter: model.KeyMod(2000, 0)})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tp := range tuples {
		if kr.Contains(tp.Key) && tr.Contains(tp.Time) && tp.Key%2000 == 0 {
			want++
		}
	}
	if len(res.Tuples) != want || want == 0 {
		t.Fatalf("got %d tuples, want %d (>0)", len(res.Tuples), want)
	}
	for _, tp := range res.Tuples {
		if !kr.Contains(tp.Key) || !tr.Contains(tp.Time) {
			t.Fatalf("out-of-range tuple %v", tp)
		}
	}
}

func TestDecomposePrunesChunks(t *testing.T) {
	c := newCluster(t, 1, 1, 1)
	// Three temporally disjoint chunks.
	for w := 0; w < 3; w++ {
		c.ingest(seqTuples(50, 100, int64(w*100_000)))
		c.flushAll()
	}
	q := model.Query{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 100_000, Hi: 100_049}}
	mem, chunks := c.coord.Decompose(c.ms.RegisterQuery(q))
	if len(chunks) != 1 {
		t.Fatalf("decomposed into %d chunk subqueries, want 1", len(chunks))
	}
	if len(mem) != 0 {
		t.Fatalf("memtable subqueries for drained servers: %d", len(mem))
	}
}

func TestLateVisibilityWindow(t *testing.T) {
	c := newCluster(t, 1, 1, 1)
	c.ingest([]model.Tuple{{Key: 1, Time: 100_000}})
	// Live region min=100 000, Δt=1000 → presumed left bound 99 000.
	q := model.Query{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 0, Hi: 99_500}}
	mem, _ := c.coord.Decompose(c.ms.RegisterQuery(q))
	if len(mem) != 1 {
		t.Fatalf("query inside Δt window skipped the memtable: %d", len(mem))
	}
	q2 := model.Query{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 0, Hi: 50_000}}
	mem, _ = c.coord.Decompose(c.ms.RegisterQuery(q2))
	if len(mem) != 0 {
		t.Fatalf("query far below the window still hit the memtable")
	}
}

func TestLateTupleWithinDeltaIsVisible(t *testing.T) {
	c := newCluster(t, 1, 1, 1)
	c.ingest([]model.Tuple{{Key: 1, Time: 100_000}})
	// A tuple 500 ms late (inside Δt=1000).
	c.ingest([]model.Tuple{{Key: 2, Time: 99_500}})
	res, err := c.coord.Execute(model.Query{
		Keys:  model.FullKeyRange(),
		Times: model.TimeRange{Lo: 99_000, Hi: 99_900},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0].Key != 2 {
		t.Fatalf("late tuple invisible: %v", res.Tuples)
	}
}

func TestAllPoliciesReturnSameResults(t *testing.T) {
	c := newCluster(t, 2, 4, 4)
	for w := 0; w < 5; w++ {
		c.ingest(seqTuples(200, 1<<55, int64(w*10_000)))
		c.flushAll()
	}
	q := model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}
	var want int
	for _, p := range []Policy{LADA{}, RoundRobin{}, Hashing{}, SharedQueue{}} {
		c.coord.SetPolicy(p)
		res, err := c.coord.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if want == 0 {
			want = len(res.Tuples)
		}
		if len(res.Tuples) != want || want == 0 {
			t.Fatalf("%s returned %d tuples, want %d", p.Name(), len(res.Tuples), want)
		}
	}
}

func TestLADAPrefersColocatedServers(t *testing.T) {
	sqs := []*model.SubQuery{
		{Chunk: 10}, {Chunk: 20}, {Chunk: 30},
	}
	locations := [][]int{{0}, {1}, {2}}
	servers := []ServerPlacement{{ID: 0, Node: 0}, {ID: 1, Node: 1}, {ID: 2, Node: 2}}
	pref := LADA{}.Plan(sqs, locations, servers)
	for s := range servers {
		if len(pref[s]) != 3 {
			t.Fatalf("server %d pref has %d entries", s, len(pref[s]))
		}
		// The first preference of each server must be its co-located chunk.
		if pref[s][0] != s {
			t.Errorf("server %d first pref = subquery %d, want %d", s, pref[s][0], s)
		}
	}
}

func TestLADAConsistentAcrossQueries(t *testing.T) {
	// Preference order for the same chunk is a function of the chunk ID:
	// two plans with the same chunks agree.
	sqs := []*model.SubQuery{{Chunk: 7}, {Chunk: 8}}
	locations := [][]int{{0, 1}, {1, 2}}
	servers := []ServerPlacement{{ID: 0, Node: 0}, {ID: 1, Node: 1}, {ID: 2, Node: 2}}
	a := LADA{}.Plan(sqs, locations, servers)
	b := LADA{}.Plan(sqs, locations, servers)
	for s := range servers {
		if fmt.Sprint(a[s]) != fmt.Sprint(b[s]) {
			t.Errorf("server %d preferences differ across identical plans", s)
		}
	}
}

func TestRoundRobinAndHashingDisjoint(t *testing.T) {
	sqs := make([]*model.SubQuery, 10)
	for i := range sqs {
		sqs[i] = &model.SubQuery{Chunk: model.ChunkID(i + 1)}
	}
	servers := []ServerPlacement{{ID: 0}, {ID: 1}, {ID: 2}}
	for _, p := range []Policy{RoundRobin{}, Hashing{}} {
		pref := p.Plan(sqs, nil, servers)
		seen := map[int]int{}
		for s := range pref {
			for _, idx := range pref[s] {
				seen[idx]++
			}
		}
		if len(seen) != 10 {
			t.Fatalf("%s: %d subqueries assigned, want 10", p.Name(), len(seen))
		}
		for idx, n := range seen {
			if n != 1 {
				t.Fatalf("%s: subquery %d assigned %d times", p.Name(), idx, n)
			}
		}
	}
}

func TestCacheHitsAcrossRepeatedQueries(t *testing.T) {
	c := newCluster(t, 1, 1, 1)
	c.ingest(seqTuples(500, 100, 1000))
	c.flushAll()
	q := model.Query{Keys: model.KeyRange{Lo: 0, Hi: 20_000}, Times: model.FullTimeRange()}
	r1, err := c.coord.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.coord.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHits != 0 {
		t.Errorf("first query had %d cache hits", r1.CacheHits)
	}
	if r2.CacheHits == 0 {
		t.Error("repeat query had no cache hits")
	}
	if r2.BytesRead != 0 {
		t.Errorf("repeat query still read %d bytes", r2.BytesRead)
	}
	if len(r1.Tuples) != len(r2.Tuples) {
		t.Errorf("cached result differs: %d vs %d", len(r1.Tuples), len(r2.Tuples))
	}
}

func TestBloomSkipsLeaves(t *testing.T) {
	c := newCluster(t, 1, 1, 1)
	// Keys spread across the template's leaves, times correlate with keys →
	// most leaves prunable for narrow windows.
	tuples := make([]model.Tuple, 1000)
	for i := range tuples {
		tuples[i] = model.Tuple{Key: model.Key(uint64(i) << 54), Time: model.Timestamp(i * 1000)}
	}
	c.ingest(tuples)
	c.flushAll()
	res, err := c.coord.Execute(model.Query{
		Keys:  model.FullKeyRange(),
		Times: model.TimeRange{Lo: 0, Hi: 10_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesSkipped == 0 {
		t.Error("no leaves pruned on a highly selective time window")
	}
	if len(res.Tuples) != 11 {
		t.Errorf("got %d tuples, want 11", len(res.Tuples))
	}
}

func TestQueryServerFailureRedispatch(t *testing.T) {
	c := newCluster(t, 1, 3, 3)
	for w := 0; w < 4; w++ {
		c.ingest(seqTuples(200, 100, int64(w*10_000)))
		c.flushAll()
	}
	c.qs[0].Fail()
	c.qs[1].Fail()
	res, err := c.coord.Execute(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if err != nil {
		t.Fatalf("query failed despite a live server: %v", err)
	}
	if len(res.Tuples) != 800 {
		t.Fatalf("got %d tuples, want 800", len(res.Tuples))
	}
	if c.qs[2].Executed() == 0 {
		t.Error("surviving server executed nothing")
	}
}

func TestAllQueryServersDown(t *testing.T) {
	c := newCluster(t, 1, 2, 2)
	c.ingest(seqTuples(100, 100, 0))
	c.flushAll()
	c.qs[0].Fail()
	c.qs[1].Fail()
	_, err := c.coord.Execute(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if !errors.Is(err, ErrNoQueryServers) {
		t.Fatalf("err = %v, want ErrNoQueryServers", err)
	}
	// Recovery restores service.
	c.qs[0].Recover()
	if _, err := c.coord.Execute(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestFailureDuringQuery(t *testing.T) {
	// A server that fails between queries: its claimed subqueries return to
	// the pending set and complete elsewhere. (Mid-execution failure is
	// simulated by marking it down before the query; the claimed-subquery
	// return path is the same.)
	c := newCluster(t, 1, 2, 2)
	for w := 0; w < 6; w++ {
		c.ingest(seqTuples(100, 100, int64(w*10_000)))
		c.flushAll()
	}
	q := model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()}
	res1, err := c.coord.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	c.qs[0].Fail()
	res2, err := c.coord.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Tuples) != len(res2.Tuples) {
		t.Fatalf("results differ across failure: %d vs %d", len(res1.Tuples), len(res2.Tuples))
	}
}

func TestCoordinatorFailover(t *testing.T) {
	// §V: a new coordinator re-initializes from the metadata server's
	// active-query registry.
	c := newCluster(t, 1, 1, 1)
	c.ingest(seqTuples(100, 100, 0))
	c.flushAll()
	q := c.ms.RegisterQuery(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	// "Coordinator crash": a replacement reads the registry and re-runs.
	replacement := NewCoordinator(CoordinatorConfig{}, c.ms, c.fs)
	replacement.AddQueryServer(c.qs[0])
	active := c.ms.ActiveQueries()
	if len(active) != 1 || active[0].ID != q.ID {
		t.Fatalf("active queries = %+v", active)
	}
	res, err := replacement.Execute(active[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 100 {
		t.Fatalf("failover query returned %d tuples", len(res.Tuples))
	}
}

func TestPolicyByName(t *testing.T) {
	cases := map[string]string{
		"lada":         "lada",
		"":             "lada",
		"anything":     "lada",
		"rr":           "round-robin",
		"round-robin":  "round-robin",
		"hash":         "hashing",
		"hashing":      "hashing",
		"shared":       "shared-queue",
		"shared-queue": "shared-queue",
	}
	for in, want := range cases {
		if got := PolicyByName(in).Name(); got != want {
			t.Errorf("PolicyByName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCoordinatorExplain(t *testing.T) {
	c := newCluster(t, 2, 2, 2)
	c.ingest(seqTuples(200, 1<<56, 1000))
	c.flushAll()
	c.ingest(seqTuples(50, 1<<56, 9000))
	info := c.coord.Explain(model.Query{Keys: model.FullKeyRange(), Times: model.FullTimeRange()})
	if len(info.ChunkSubQueries) == 0 || len(info.MemSubQueries) == 0 {
		t.Fatalf("explain: %d chunk, %d mem", len(info.ChunkSubQueries), len(info.MemSubQueries))
	}
	for i, ci := range info.Chunks {
		if ci.ID != info.ChunkSubQueries[i].Chunk {
			t.Fatalf("chunk alignment broken at %d", i)
		}
		if ci.Path == "" {
			t.Fatalf("chunk %d missing metadata", i)
		}
	}
}

func TestSubQueryLimitOnChunks(t *testing.T) {
	c := newCluster(t, 1, 1, 1)
	c.ingest(seqTuples(500, 100, 0))
	c.flushAll()
	res, err := c.coord.Execute(model.Query{
		Keys: model.FullKeyRange(), Times: model.FullTimeRange(), Limit: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 7 {
		t.Fatalf("limit returned %d", len(res.Tuples))
	}
	for i, tp := range res.Tuples {
		if tp.Key != model.Key(uint64(i)*100) {
			t.Fatalf("not the lowest keys: %v", tp)
		}
	}
}
