package queryexec

import (
	"encoding/binary"
	"testing"
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/ingest"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/telemetry"
)

// aggTuples makes n tuples whose 8-byte payload is the big-endian value
// 3i+1, so every aggregate has a closed-form expected answer.
func aggTuples(n int, t0 int64) []model.Tuple {
	out := make([]model.Tuple, n)
	for i := range out {
		p := make([]byte, 8)
		binary.BigEndian.PutUint64(p, uint64(3*i+1))
		out[i] = model.Tuple{Key: model.Key(i), Time: model.Timestamp(t0 + int64(i)), Payload: p}
	}
	return out
}

func runAgg(t *testing.T, c *testCluster, q model.AggregateQuery) *model.AggResult {
	t.Helper()
	res, err := c.coord.ExecuteAggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAggregatePushdownNoLeafReads is the acceptance check for the v2
// pre-aggregate block: an aggregate over fully covered leaves must be
// answered from header metadata alone — zero leaf-body DFS reads — which
// the pushdown telemetry makes observable. The tree's key interval is
// pinned to [0,1023] over 16 leaves, so leaf boundaries sit at multiples
// of 63 and a key range ending at 692 covers leaves 0..10 exactly: the
// chunk's data region [0,1023] is not covered (no whole-chunk metadata
// shortcut) while every selected leaf is, so all of them must be
// answered from their pre-aggregate buckets.
func TestAggregatePushdownNoLeafReads(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 2, Replication: 2, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	c := &testCluster{fs: fs, ms: ms}
	c.coord = NewCoordinator(CoordinatorConfig{LateDeltaMillis: 1000}, ms, fs)
	srv := ingest.NewServer(ingest.Config{
		ID: 0, Keys: model.KeyRange{Lo: 0, Hi: 1023}, ChunkBytes: 1 << 30, Leaves: 16,
	}, fs, ms, 0)
	c.is = append(c.is, srv)
	c.coord.SetMemExecutor(0, srv)
	qs := NewServer(ServerConfig{
		ID: 0, Node: 0, CacheBytes: 1 << 20, UseBloom: true,
		Metrics: NewServerMetrics(telemetry.NewRegistry()),
	}, fs, ms)
	c.qs = append(c.qs, qs)
	c.coord.AddQueryServer(qs)

	const n = 1024
	c.ingest(aggTuples(n, 1000))
	c.flushAll()

	q := model.AggregateQuery{
		Keys:  model.KeyRange{Lo: 0, Hi: 692},
		Times: model.FullTimeRange(),
		Kind:  model.AggSum,
	}
	res := runAgg(t, c, q)

	var wantSum uint64
	for i := 0; i <= 692; i++ {
		wantSum += uint64(3*i + 1)
	}
	if v, ok := res.Value(); !ok || v != wantSum {
		t.Fatalf("sum = %d,%v want %d", v, ok, wantSum)
	}
	if res.Count != 693 || res.Values != 693 {
		t.Fatalf("count=%d values=%d want 693", res.Count, res.Values)
	}
	if res.MetaChunks != 0 {
		t.Fatalf("meta pushdown fired (%d chunks); the test must exercise the leaf path", res.MetaChunks)
	}
	if res.PushdownLeaves == 0 {
		t.Fatal("no leaves answered from pre-aggregates")
	}
	if res.LeavesRead != 0 {
		t.Fatalf("read %d leaf bodies; fully covered leaves must not touch the DFS", res.LeavesRead)
	}
	// The same must be visible in the query server's telemetry.
	if got := qs.m.AggPushdownLeaves.Value(); got == 0 {
		t.Error("agg_pushdown_leaves_total stayed zero")
	}
	if got := qs.m.AggScannedLeaves.Value(); got != 0 {
		t.Errorf("agg_scanned_leaves_total = %d, want 0", got)
	}
	if qs.m.AggBytesSaved.Value() <= 0 {
		t.Error("agg_pushdown_bytes_saved_total stayed zero")
	}
}

// TestAggregateMetaPushdown: a query region enclosing a chunk's whole
// declared region is answered by the coordinator from the chunk's
// registered aggregate, with no subquery dispatched for it.
func TestAggregateMetaPushdown(t *testing.T) {
	c := newCluster(t, 1, 1, 2)
	const n = 500
	c.ingest(aggTuples(n, 1000))
	c.flushAll()

	res := runAgg(t, c, model.AggregateQuery{
		Keys: model.FullKeyRange(), Times: model.FullTimeRange(), Kind: model.AggCount,
	})
	if res.Count != n {
		t.Fatalf("count = %d want %d", res.Count, n)
	}
	if res.MetaChunks == 0 {
		t.Error("fully covered chunk was not answered from metadata")
	}
	if res.LeavesRead != 0 || res.PushdownLeaves != 0 {
		t.Errorf("meta-answered chunk still touched leaves: read=%d pushdown=%d",
			res.LeavesRead, res.PushdownLeaves)
	}
}

// TestAggregateKindsMatchTupleFold cross-checks every aggregate kind
// against folding the tuple query's results, over a partial region that
// spans fresh and historical data and cuts leaves mid-range.
func TestAggregateKindsMatchTupleFold(t *testing.T) {
	c := newCluster(t, 2, 2, 2)
	c.ingest(aggTuples(600, 1000))
	c.flushAll()
	c.ingest(aggTuples(200, 5000)) // same keys, later times, unflushed

	q := model.Query{
		Keys:  model.KeyRange{Lo: 37, Hi: 411},
		Times: model.TimeRange{Lo: 1100, Hi: 5150},
	}
	tup, err := c.coord.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	var want model.AggPartial
	for i := range tup.Tuples {
		want.AddTuple(&tup.Tuples[i], 0)
	}
	if want.Count == 0 || want.Count == want.Sum {
		t.Fatalf("degenerate reference fold: %+v", want)
	}
	for _, kind := range []model.AggKind{model.AggCount, model.AggSum, model.AggMin, model.AggMax} {
		res := runAgg(t, c, model.AggregateQuery{Keys: q.Keys, Times: q.Times, Kind: kind})
		if res.Count != want.Count {
			t.Errorf("%s: count %d want %d", kind, res.Count, want.Count)
		}
		v, ok := res.Value()
		if !ok {
			t.Fatalf("%s: undefined over non-empty region", kind)
		}
		var wantV uint64
		switch kind {
		case model.AggCount:
			wantV = want.Count
		case model.AggSum:
			wantV = want.Sum
		case model.AggMin:
			wantV = want.Min
		case model.AggMax:
			wantV = want.Max
		}
		if v != wantV {
			t.Errorf("%s = %d want %d", kind, v, wantV)
		}
	}
}

// TestAggregateWithFilterScansLeaves: a predicate disables every
// pre-aggregate shortcut (buckets have no predicate resolution), and the
// result still matches the filtered tuple fold.
func TestAggregateWithFilterScansLeaves(t *testing.T) {
	c := newCluster(t, 1, 1, 2)
	c.ingest(aggTuples(400, 1000))
	c.flushAll()

	f := model.KeyMod(4, 0)
	q := model.AggregateQuery{
		Keys: model.FullKeyRange(), Times: model.FullTimeRange(),
		Kind: model.AggSum, Filter: f,
	}
	res := runAgg(t, c, q)
	var wantSum, wantCount uint64
	for i := 0; i < 400; i += 4 {
		wantSum += uint64(3*i + 1)
		wantCount++
	}
	if res.Count != wantCount {
		t.Fatalf("count = %d want %d", res.Count, wantCount)
	}
	if v, _ := res.Value(); v != wantSum {
		t.Fatalf("sum = %d want %d", v, wantSum)
	}
	if res.MetaChunks != 0 || res.PushdownLeaves != 0 {
		t.Errorf("filtered aggregate used pre-aggregates: meta=%d leaves=%d",
			res.MetaChunks, res.PushdownLeaves)
	}
	if res.LeavesRead == 0 {
		t.Error("filtered aggregate read no leaves")
	}
}

// TestAggregateEmptyRegion: an aggregate over a region with no tuples is
// defined for COUNT (zero) and undefined for MIN/MAX.
func TestAggregateEmptyRegion(t *testing.T) {
	c := newCluster(t, 1, 1, 2)
	c.ingest(aggTuples(50, 1000))
	c.flushAll()

	q := model.AggregateQuery{
		Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 900_000, Hi: 900_100},
		Kind: model.AggCount,
	}
	res := runAgg(t, c, q)
	if v, ok := res.Value(); !ok || v != 0 {
		t.Fatalf("count over empty region = %d,%v want 0,true", v, ok)
	}
	q.Kind = model.AggMin
	res = runAgg(t, c, q)
	if _, ok := res.Value(); ok {
		t.Fatal("min over empty region is defined")
	}
}
