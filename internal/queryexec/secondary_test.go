package queryexec

import (
	"encoding/binary"
	"testing"
	"time"

	"waterwheel/internal/chunk"
	"waterwheel/internal/dfs"
	"waterwheel/internal/ingest"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// TestSecondaryIndexEndToEnd exercises the §VIII extension through the
// full query path: chunks built with a secondary attribute index, a query
// whose filter pins the attribute, and leaf pruning observable in the
// result counters.
func TestSecondaryIndexEndToEnd(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 1, Replication: 1, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	is := ingest.NewServer(ingest.Config{
		ID: 0, Keys: model.KeyRange{Lo: 0, Hi: 1 << 20}, ChunkBytes: 1 << 30, Leaves: 16,
		Bloom: chunk.BuildOptions{Secondary: &chunk.SecondarySpec{Offset: 0}},
	}, fs, ms, 0)

	// Attribute value correlates with key region: value = key / 4096, so
	// each template leaf holds few distinct values.
	const n = 16 * 4096
	for i := 0; i < n; i++ {
		payload := make([]byte, 8)
		binary.BigEndian.PutUint64(payload, uint64(i)/4096)
		is.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i), Payload: payload})
	}
	is.Flush()

	coord := NewCoordinator(CoordinatorConfig{}, ms, fs)
	coord.SetMemExecutor(0, is)
	qs := NewServer(ServerConfig{ID: 0, Node: 0, CacheBytes: 1 << 20, UseBloom: true}, fs, ms)
	coord.AddQueryServer(qs)

	// Query the full key range but pin the attribute to one value.
	withSec, err := coord.Execute(model.Query{
		Keys:   model.FullKeyRange(),
		Times:  model.FullTimeRange(),
		Filter: model.PayloadU64(0, model.CmpEQ, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(withSec.Tuples) != 4096 {
		t.Fatalf("got %d tuples, want 4096", len(withSec.Tuples))
	}
	if withSec.LeavesSkipped == 0 {
		t.Fatal("secondary index pruned nothing")
	}
	if withSec.LeavesRead > 3 {
		t.Fatalf("read %d leaves despite secondary pruning", withSec.LeavesRead)
	}

	// The same predicate shaped so pruning cannot apply (inside an OR)
	// still returns identical results — pruning is purely an optimization.
	noPrune, err := coord.Execute(model.Query{
		Keys:   model.FullKeyRange(),
		Times:  model.FullTimeRange(),
		Filter: model.Or(model.PayloadU64(0, model.CmpEQ, 7), model.False()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(noPrune.Tuples) != len(withSec.Tuples) {
		t.Fatalf("pruned and unpruned results differ: %d vs %d", len(withSec.Tuples), len(noPrune.Tuples))
	}
	if noPrune.LeavesRead <= withSec.LeavesRead {
		t.Errorf("expected OR-shaped filter to read more leaves (%d vs %d)",
			noPrune.LeavesRead, withSec.LeavesRead)
	}
}
