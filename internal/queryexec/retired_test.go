package queryexec

import (
	"errors"
	"testing"

	"waterwheel/internal/model"
)

// TestExecuteSubQueryRetiredChunk checks the typed retirement error: a
// subquery whose chunk file was deleted mid-flight must surface
// ErrRetired — the coordinator's signal to replan against fresh
// metadata — not a raw DFS error.
func TestExecuteSubQueryRetiredChunk(t *testing.T) {
	c := newCluster(t, 1, 1, 1)
	c.ingest(seqTuples(200, 1<<40, 1000))
	c.flushAll()
	ci, ok := c.ms.Chunk(model.ChunkID(1))
	if !ok {
		t.Fatal("chunk 1 not registered")
	}
	// Force-delete the file under the planned subquery — the window the
	// drain-safe retirer normally closes, kept open here on purpose.
	if err := c.fs.Delete(ci.Path); err != nil {
		t.Fatal(err)
	}
	c.qs[0].EvictChunk(ci.ID)
	sq := &model.SubQuery{
		QueryID: 1, Region: model.FullRegion(), Chunk: ci.ID,
		ChunkPath: ci.Path, ChunkHeaderLen: ci.HeaderLen,
	}
	_, err := c.qs[0].ExecuteSubQuery(sq)
	if !errors.Is(err, ErrRetired) {
		t.Fatalf("err = %v, want ErrRetired", err)
	}
}
