package model

import (
	"strings"
	"testing"
)

func TestStringers(t *testing.T) {
	tp := Tuple{Key: 5, Time: 9, Payload: []byte("ab")}
	if s := tp.String(); !strings.Contains(s, "key=5") || !strings.Contains(s, "2B") {
		t.Errorf("tuple string %q", s)
	}
	if s := (KeyRange{1, 2}).String(); s != "[1, 2]" {
		t.Errorf("keyrange string %q", s)
	}
	if s := (TimeRange{3, 4}).String(); s != "[3, 4]" {
		t.Errorf("timerange string %q", s)
	}
	r := Region{Keys: KeyRange{1, 2}, Times: TimeRange{3, 4}}
	if s := r.String(); !strings.Contains(s, "[1, 2]") || !strings.Contains(s, "[3, 4]") {
		t.Errorf("region string %q", s)
	}
	q := Query{ID: 7, Keys: KeyRange{1, 2}, Times: TimeRange{3, 4}}
	if s := q.String(); !strings.Contains(s, "query(7") {
		t.Errorf("query string %q", s)
	}
	mem := SubQuery{QueryID: 1, Seq: 2, IndexServer: 3, Chunk: MemChunk}
	if s := mem.String(); !strings.Contains(s, "mem@is3") {
		t.Errorf("mem subquery string %q", s)
	}
	ch := SubQuery{QueryID: 1, Seq: 2, Chunk: 9}
	if s := ch.String(); !strings.Contains(s, "chunk9") {
		t.Errorf("chunk subquery string %q", s)
	}
}

func TestQueryRegion(t *testing.T) {
	q := Query{Keys: KeyRange{10, 20}, Times: TimeRange{30, 40}}
	r := q.Region()
	if r.Keys != q.Keys || r.Times != q.Times {
		t.Errorf("region %v", r)
	}
}

func TestFullRegion(t *testing.T) {
	r := FullRegion()
	if !r.Contains(0, MinTimestamp) || !r.Contains(MaxKey, MaxTimestamp) {
		t.Error("full region misses corners")
	}
	if !r.IsValid() {
		t.Error("full region invalid")
	}
}

func TestResultSortAndMerge(t *testing.T) {
	a := &Result{Tuples: []Tuple{
		{Key: 3, Time: 1}, {Key: 1, Time: 5}, {Key: 1, Time: 2},
	}}
	b := &Result{
		Tuples:        []Tuple{{Key: 2, Time: 9}},
		LeavesRead:    4,
		LeavesSkipped: 2,
		BytesRead:     100,
		CacheHits:     1,
	}
	a.LeavesRead = 1
	a.Merge(b)
	if len(a.Tuples) != 4 || a.LeavesRead != 5 || a.LeavesSkipped != 2 || a.BytesRead != 100 || a.CacheHits != 1 {
		t.Fatalf("merge result %+v", a)
	}
	a.SortTuples()
	want := []struct {
		k Key
		t Timestamp
	}{{1, 2}, {1, 5}, {2, 9}, {3, 1}}
	for i, w := range want {
		if a.Tuples[i].Key != w.k || a.Tuples[i].Time != w.t {
			t.Fatalf("sorted[%d] = %v, want (%d,%d)", i, a.Tuples[i], w.k, w.t)
		}
	}
}

func TestResultSortTieBreaksOnPayload(t *testing.T) {
	r := &Result{Tuples: []Tuple{
		{Key: 1, Time: 1, Payload: []byte("b")},
		{Key: 1, Time: 1, Payload: []byte("a")},
	}}
	r.SortTuples()
	if string(r.Tuples[0].Payload) != "a" {
		t.Error("payload tie-break not applied")
	}
}

func TestRecurrenceWindows(t *testing.T) {
	day := int64(86_400_000)
	rc := &Recurrence{PeriodMillis: day, StartMillis: 9 * 3_600_000, LengthMillis: 8 * 3_600_000}
	span := TimeRange{Lo: 0, Hi: Timestamp(3*day - 1)}
	ws := rc.Windows(span)
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	for i, w := range ws {
		wantLo := Timestamp(int64(i)*day + 9*3_600_000)
		wantHi := Timestamp(int64(i)*day + 17*3_600_000 - 1)
		if w.Lo != wantLo || w.Hi != wantHi {
			t.Fatalf("window %d = %v, want [%d,%d]", i, w, wantLo, wantHi)
		}
	}
}

func TestRecurrenceWindowsClipped(t *testing.T) {
	rc := &Recurrence{PeriodMillis: 1000, StartMillis: 200, LengthMillis: 300}
	ws := rc.Windows(TimeRange{Lo: 250, Hi: 1250})
	// Period 0's window [200,499] clips to [250,499]; period 1's [1200,1499]
	// clips to [1200,1250].
	if len(ws) != 2 || ws[0].Lo != 250 || ws[0].Hi != 499 || ws[1].Lo != 1200 || ws[1].Hi != 1250 {
		t.Fatalf("windows = %v", ws)
	}
}

func TestRecurrenceWindowsMalformed(t *testing.T) {
	span := TimeRange{Lo: 0, Hi: 10_000}
	for _, rc := range []*Recurrence{
		nil,
		{PeriodMillis: 0, StartMillis: 0, LengthMillis: 1},
		{PeriodMillis: 100, StartMillis: 0, LengthMillis: 0},
		{PeriodMillis: 100, StartMillis: 0, LengthMillis: 200},
		{PeriodMillis: 100, StartMillis: -1, LengthMillis: 10},
		{PeriodMillis: 100, StartMillis: 100, LengthMillis: 10},
	} {
		if ws := rc.Windows(span); ws != nil {
			t.Fatalf("malformed %+v expanded to %v", rc, ws)
		}
	}
	// Too many periods: fall back to nil rather than enumerating millions.
	wideSpan := FullTimeRange()
	rc := &Recurrence{PeriodMillis: 1000, StartMillis: 0, LengthMillis: 1}
	if ws := rc.Windows(wideSpan); ws != nil {
		t.Fatalf("huge span expanded to %d windows", len(ws))
	}
}

func TestRecurrenceContains(t *testing.T) {
	day := int64(86_400_000)
	rc := &Recurrence{PeriodMillis: day, StartMillis: 9 * 3_600_000, LengthMillis: 8 * 3_600_000}
	in := Timestamp(2*day + 12*3_600_000)  // day 2, noon
	out := Timestamp(2*day + 18*3_600_000) // day 2, 18:00
	edgeLo := Timestamp(9 * 3_600_000)
	edgeHi := Timestamp(17*3_600_000 - 1)
	past := Timestamp(17 * 3_600_000)
	if !rc.Contains(in) || rc.Contains(out) {
		t.Fatalf("membership wrong: in=%v out=%v", rc.Contains(in), rc.Contains(out))
	}
	if !rc.Contains(edgeLo) || !rc.Contains(edgeHi) || rc.Contains(past) {
		t.Fatal("window edges wrong")
	}
	// Windows and Contains agree on every enumerated window bound.
	for _, w := range rc.Windows(TimeRange{Lo: 0, Hi: Timestamp(3 * day)}) {
		if !rc.Contains(w.Lo) || !rc.Contains(w.Hi) {
			t.Fatalf("window %v not contained by its own recurrence", w)
		}
	}
}
