package model

import (
	"strings"
	"testing"
)

func TestStringers(t *testing.T) {
	tp := Tuple{Key: 5, Time: 9, Payload: []byte("ab")}
	if s := tp.String(); !strings.Contains(s, "key=5") || !strings.Contains(s, "2B") {
		t.Errorf("tuple string %q", s)
	}
	if s := (KeyRange{1, 2}).String(); s != "[1, 2]" {
		t.Errorf("keyrange string %q", s)
	}
	if s := (TimeRange{3, 4}).String(); s != "[3, 4]" {
		t.Errorf("timerange string %q", s)
	}
	r := Region{Keys: KeyRange{1, 2}, Times: TimeRange{3, 4}}
	if s := r.String(); !strings.Contains(s, "[1, 2]") || !strings.Contains(s, "[3, 4]") {
		t.Errorf("region string %q", s)
	}
	q := Query{ID: 7, Keys: KeyRange{1, 2}, Times: TimeRange{3, 4}}
	if s := q.String(); !strings.Contains(s, "query(7") {
		t.Errorf("query string %q", s)
	}
	mem := SubQuery{QueryID: 1, Seq: 2, IndexServer: 3, Chunk: MemChunk}
	if s := mem.String(); !strings.Contains(s, "mem@is3") {
		t.Errorf("mem subquery string %q", s)
	}
	ch := SubQuery{QueryID: 1, Seq: 2, Chunk: 9}
	if s := ch.String(); !strings.Contains(s, "chunk9") {
		t.Errorf("chunk subquery string %q", s)
	}
}

func TestQueryRegion(t *testing.T) {
	q := Query{Keys: KeyRange{10, 20}, Times: TimeRange{30, 40}}
	r := q.Region()
	if r.Keys != q.Keys || r.Times != q.Times {
		t.Errorf("region %v", r)
	}
}

func TestFullRegion(t *testing.T) {
	r := FullRegion()
	if !r.Contains(0, MinTimestamp) || !r.Contains(MaxKey, MaxTimestamp) {
		t.Error("full region misses corners")
	}
	if !r.IsValid() {
		t.Error("full region invalid")
	}
}

func TestResultSortAndMerge(t *testing.T) {
	a := &Result{Tuples: []Tuple{
		{Key: 3, Time: 1}, {Key: 1, Time: 5}, {Key: 1, Time: 2},
	}}
	b := &Result{
		Tuples:        []Tuple{{Key: 2, Time: 9}},
		LeavesRead:    4,
		LeavesSkipped: 2,
		BytesRead:     100,
		CacheHits:     1,
	}
	a.LeavesRead = 1
	a.Merge(b)
	if len(a.Tuples) != 4 || a.LeavesRead != 5 || a.LeavesSkipped != 2 || a.BytesRead != 100 || a.CacheHits != 1 {
		t.Fatalf("merge result %+v", a)
	}
	a.SortTuples()
	want := []struct {
		k Key
		t Timestamp
	}{{1, 2}, {1, 5}, {2, 9}, {3, 1}}
	for i, w := range want {
		if a.Tuples[i].Key != w.k || a.Tuples[i].Time != w.t {
			t.Fatalf("sorted[%d] = %v, want (%d,%d)", i, a.Tuples[i], w.k, w.t)
		}
	}
}

func TestResultSortTieBreaksOnPayload(t *testing.T) {
	r := &Result{Tuples: []Tuple{
		{Key: 1, Time: 1, Payload: []byte("b")},
		{Key: 1, Time: 1, Payload: []byte("a")},
	}}
	r.SortTuples()
	if string(r.Tuples[0].Payload) != "a" {
		t.Error("payload tie-break not applied")
	}
}
