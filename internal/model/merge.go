package model

// CompareTuples is the canonical result order: (key, time, payload),
// matching Result.SortTuples. Negative, zero or positive as a <, ==, > b.
func CompareTuples(a, b *Tuple) int {
	if a.Key != b.Key {
		if a.Key < b.Key {
			return -1
		}
		return 1
	}
	if a.Time != b.Time {
		if a.Time < b.Time {
			return -1
		}
		return 1
	}
	switch {
	case string(a.Payload) < string(b.Payload):
		return -1
	case string(a.Payload) > string(b.Payload):
		return 1
	}
	return 0
}

// MergeSortedTuples k-way merges parts, each already sorted in canonical
// tuple order, into one sorted slice. With limit > 0 the merge stops after
// limit tuples — a LIMIT query pays for the tuples it returns, not for
// sorting everything its subqueries delivered. Ties break by part index,
// keeping the result deterministic for identical inputs.
func MergeSortedTuples(parts [][]Tuple, limit int) []Tuple {
	// Drop empty parts up front; the heap then never holds exhausted cursors.
	heads := make([]mergeCursor, 0, len(parts))
	total := 0
	for i, p := range parts {
		if len(p) > 0 {
			heads = append(heads, mergeCursor{part: i, tuples: p})
			total += len(p)
		}
	}
	switch len(heads) {
	case 0:
		return nil
	case 1:
		out := heads[0].tuples
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return out
	}
	n := total
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Tuple, 0, n)
	h := cursorHeap(heads)
	h.init()
	for len(h) > 0 && len(out) < n {
		c := &h[0]
		out = append(out, c.tuples[c.pos])
		c.pos++
		if c.pos == len(c.tuples) {
			h.pop()
		} else {
			h.siftDown(0)
		}
	}
	return out
}

// mergeCursor walks one sorted part.
type mergeCursor struct {
	tuples []Tuple
	pos    int
	part   int
}

// cursorHeap is a minimal binary min-heap of cursors ordered by their
// current tuple (part index as tiebreak). Hand-rolled rather than
// container/heap to avoid the interface boxing on every sift.
type cursorHeap []mergeCursor

func (h cursorHeap) less(i, j int) bool {
	a, b := &h[i], &h[j]
	if c := CompareTuples(&a.tuples[a.pos], &b.tuples[b.pos]); c != 0 {
		return c < 0
	}
	return a.part < b.part
}

func (h cursorHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h cursorHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h.less(l, m) {
			m = l
		}
		if r < len(h) && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h *cursorHeap) pop() {
	old := *h
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.siftDown(0)
}
