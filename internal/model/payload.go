// Zero-copy payload views: typed accessors over a tuple's raw payload
// bytes. Columnar scan paths hand callbacks the payload slice directly
// (aliasing an arena or a chunk body); these helpers extract typed fields
// from it without copying, and PayloadView names the decode-function shape
// the generic scan layer in internal/core composes over.
package model

import "encoding/binary"

// PayloadView decodes a raw payload into a typed value. Views must treat p
// as read-only and must not retain it beyond the call: the bytes alias a
// leaf arena or chunk body owned by the scan.
type PayloadView[P any] func(p []byte) P

// RawPayload is the identity view: the payload bytes themselves.
func RawPayload(p []byte) []byte { return p }

// PayloadU64Field reads the big-endian uint64 payload field at byte offset
// off, reporting ok=false when the payload is too short to carry it.
func PayloadU64Field(p []byte, off uint32) (uint64, bool) {
	if int64(off)+8 > int64(len(p)) {
		return 0, false
	}
	return binary.BigEndian.Uint64(p[off:]), true
}

// U64Field returns a view extracting the big-endian uint64 at byte offset
// off; short payloads yield 0. Use PayloadU64Field directly when presence
// must be distinguished from a zero value.
func U64Field(off uint32) PayloadView[uint64] {
	return func(p []byte) uint64 {
		v, _ := PayloadU64Field(p, off)
		return v
	}
}
