package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// The paper's query model includes a user-defined predicate fq that decides
// whether a tuple within the query region qualifies (§II-A). Because
// subqueries execute on remote indexing/query servers, the predicate must
// travel over the wire; Go closures cannot. Filter is a small serializable
// expression tree over the tuple's key, timestamp and payload bytes that
// plays the role of fq.

// FilterOp identifies a filter node kind.
type FilterOp uint8

// Filter node kinds.
const (
	// FilterTrue accepts every tuple. A nil *Filter is treated as FilterTrue.
	FilterTrue FilterOp = iota
	// FilterFalse rejects every tuple.
	FilterFalse
	// FilterAnd accepts iff all children accept.
	FilterAnd
	// FilterOr accepts iff any child accepts.
	FilterOr
	// FilterNot accepts iff its single child rejects.
	FilterNot
	// FilterKeyCmp compares the tuple key against Uint using Cmp.
	FilterKeyCmp
	// FilterTimeCmp compares the tuple timestamp against Int using Cmp.
	FilterTimeCmp
	// FilterPayloadU64 decodes a big-endian uint64 at payload offset Offset
	// and compares it against Uint using Cmp. Tuples with short payloads are
	// rejected.
	FilterPayloadU64
	// FilterPayloadBytes compares payload[Offset:Offset+len(Bytes)] against
	// Bytes using Cmp (lexicographic). Short payloads are rejected.
	FilterPayloadBytes
	// FilterKeyMod accepts tuples whose key ≡ Uint (mod Modulus). Useful for
	// sampling predicates in tests and workloads.
	FilterKeyMod
)

// CmpOp is a comparison operator used by leaf filter nodes.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (c CmpOp) evalInt(a, b int64) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}

func (c CmpOp) evalUint(a, b uint64) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}

func (c CmpOp) evalOrd(ord int) bool {
	switch c {
	case CmpEQ:
		return ord == 0
	case CmpNE:
		return ord != 0
	case CmpLT:
		return ord < 0
	case CmpLE:
		return ord <= 0
	case CmpGT:
		return ord > 0
	case CmpGE:
		return ord >= 0
	}
	return false
}

// Filter is a serializable predicate over tuples. The zero value (and nil)
// accepts everything.
type Filter struct {
	Op       FilterOp
	Cmp      CmpOp
	Uint     uint64
	Int      int64
	Modulus  uint64
	Offset   uint32
	Bytes    []byte
	Children []*Filter
}

// Matches evaluates the filter against t. A nil filter matches everything.
func (f *Filter) Matches(t *Tuple) bool {
	return f.MatchesCols(t.Key, t.Time, t.Payload)
}

// MatchesCols evaluates the filter against a tuple given as its three
// columns, so columnar scan paths (SoA leaves, v2 chunk columns) can apply
// predicates without materializing a Tuple. A nil filter matches
// everything. The payload is read but never retained.
func (f *Filter) MatchesCols(key Key, ts Timestamp, payload []byte) bool {
	if f == nil {
		return true
	}
	switch f.Op {
	case FilterTrue:
		return true
	case FilterFalse:
		return false
	case FilterAnd:
		for _, c := range f.Children {
			if !c.MatchesCols(key, ts, payload) {
				return false
			}
		}
		return true
	case FilterOr:
		for _, c := range f.Children {
			if c.MatchesCols(key, ts, payload) {
				return true
			}
		}
		return false
	case FilterNot:
		if len(f.Children) != 1 {
			return false
		}
		return !f.Children[0].MatchesCols(key, ts, payload)
	case FilterKeyCmp:
		return f.Cmp.evalUint(uint64(key), f.Uint)
	case FilterTimeCmp:
		return f.Cmp.evalInt(int64(ts), f.Int)
	case FilterPayloadU64:
		end := int(f.Offset) + 8
		if end > len(payload) {
			return false
		}
		v := binary.BigEndian.Uint64(payload[f.Offset:end])
		return f.Cmp.evalUint(v, f.Uint)
	case FilterPayloadBytes:
		end := int(f.Offset) + len(f.Bytes)
		if end > len(payload) {
			return false
		}
		return f.Cmp.evalOrd(bytes.Compare(payload[f.Offset:end], f.Bytes))
	case FilterKeyMod:
		if f.Modulus == 0 {
			return false
		}
		return uint64(key)%f.Modulus == f.Uint
	}
	return false
}

// Constructors for common filter shapes.

// True returns a filter accepting every tuple.
func True() *Filter { return &Filter{Op: FilterTrue} }

// False returns a filter rejecting every tuple.
func False() *Filter { return &Filter{Op: FilterFalse} }

// And combines filters conjunctively.
func And(fs ...*Filter) *Filter { return &Filter{Op: FilterAnd, Children: fs} }

// Or combines filters disjunctively.
func Or(fs ...*Filter) *Filter { return &Filter{Op: FilterOr, Children: fs} }

// Not negates a filter.
func Not(f *Filter) *Filter { return &Filter{Op: FilterNot, Children: []*Filter{f}} }

// KeyCmp compares the tuple key against v.
func KeyCmp(op CmpOp, v Key) *Filter {
	return &Filter{Op: FilterKeyCmp, Cmp: op, Uint: uint64(v)}
}

// TimeCmp compares the tuple timestamp against v.
func TimeCmp(op CmpOp, v Timestamp) *Filter {
	return &Filter{Op: FilterTimeCmp, Cmp: op, Int: int64(v)}
}

// PayloadU64 compares a big-endian uint64 at the given payload offset.
func PayloadU64(offset uint32, op CmpOp, v uint64) *Filter {
	return &Filter{Op: FilterPayloadU64, Cmp: op, Offset: offset, Uint: v}
}

// PayloadBytes compares payload bytes at the given offset against b.
func PayloadBytes(offset uint32, op CmpOp, b []byte) *Filter {
	return &Filter{Op: FilterPayloadBytes, Cmp: op, Offset: offset, Bytes: b}
}

// KeyMod accepts tuples whose key ≡ rem (mod modulus).
func KeyMod(modulus, rem uint64) *Filter {
	return &Filter{Op: FilterKeyMod, Modulus: modulus, Uint: rem}
}

// RequiredPayloadU64EQ reports whether the filter requires the big-endian
// uint64 payload field at the given offset to equal some value, and
// returns that value. It recognizes a FilterPayloadU64 equality node at
// the top level or as a conjunct of (possibly nested) FilterAnd nodes —
// the shape secondary-index pruning can exploit: any tuple failing the
// equality fails the whole filter.
func (f *Filter) RequiredPayloadU64EQ(offset uint32) (uint64, bool) {
	if f == nil {
		return 0, false
	}
	switch f.Op {
	case FilterPayloadU64:
		if f.Cmp == CmpEQ && f.Offset == offset {
			return f.Uint, true
		}
	case FilterAnd:
		for _, c := range f.Children {
			if v, ok := c.RequiredPayloadU64EQ(offset); ok {
				return v, true
			}
		}
	}
	return 0, false
}

// errBadFilter reports a malformed encoded filter.
var errBadFilter = errors.New("model: malformed encoded filter")

// maxFilterDepth bounds decoding recursion to reject hostile input.
const maxFilterDepth = 64

// AppendFilter appends a compact binary encoding of f to dst. A nil filter
// encodes as FilterTrue.
func AppendFilter(dst []byte, f *Filter) []byte {
	if f == nil {
		f = True()
	}
	dst = append(dst, byte(f.Op), byte(f.Cmp))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], f.Uint)
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(f.Int))
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], f.Modulus)
	dst = append(dst, tmp[:]...)
	var tmp4 [4]byte
	binary.BigEndian.PutUint32(tmp4[:], f.Offset)
	dst = append(dst, tmp4[:]...)
	binary.BigEndian.PutUint32(tmp4[:], uint32(len(f.Bytes)))
	dst = append(dst, tmp4[:]...)
	dst = append(dst, f.Bytes...)
	binary.BigEndian.PutUint32(tmp4[:], uint32(len(f.Children)))
	dst = append(dst, tmp4[:]...)
	for _, c := range f.Children {
		dst = AppendFilter(dst, c)
	}
	return dst
}

// DecodeFilter decodes a filter from the front of buf, returning the filter
// and bytes consumed.
func DecodeFilter(buf []byte) (*Filter, int, error) {
	return decodeFilterDepth(buf, 0)
}

func decodeFilterDepth(buf []byte, depth int) (*Filter, int, error) {
	if depth > maxFilterDepth {
		return nil, 0, fmt.Errorf("%w: nesting too deep", errBadFilter)
	}
	const fixed = 2 + 8 + 8 + 8 + 4 + 4
	if len(buf) < fixed {
		return nil, 0, errBadFilter
	}
	f := &Filter{
		Op:      FilterOp(buf[0]),
		Cmp:     CmpOp(buf[1]),
		Uint:    binary.BigEndian.Uint64(buf[2:10]),
		Int:     int64(binary.BigEndian.Uint64(buf[10:18])),
		Modulus: binary.BigEndian.Uint64(buf[18:26]),
		Offset:  binary.BigEndian.Uint32(buf[26:30]),
	}
	blen := int(binary.BigEndian.Uint32(buf[30:34]))
	pos := fixed
	if blen > 0 {
		if len(buf) < pos+blen {
			return nil, 0, errBadFilter
		}
		f.Bytes = append([]byte(nil), buf[pos:pos+blen]...)
		pos += blen
	}
	if len(buf) < pos+4 {
		return nil, 0, errBadFilter
	}
	nkids := int(binary.BigEndian.Uint32(buf[pos : pos+4]))
	pos += 4
	if nkids > len(buf) { // cheap sanity bound: each child needs ≥1 byte
		return nil, 0, errBadFilter
	}
	for i := 0; i < nkids; i++ {
		c, n, err := decodeFilterDepth(buf[pos:], depth+1)
		if err != nil {
			return nil, 0, err
		}
		f.Children = append(f.Children, c)
		pos += n
	}
	return f, pos, nil
}
