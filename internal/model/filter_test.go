package model

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestFilterNilAndTrueFalse(t *testing.T) {
	tp := &Tuple{Key: 1, Time: 2}
	var nilF *Filter
	if !nilF.Matches(tp) {
		t.Error("nil filter must match everything")
	}
	if !True().Matches(tp) {
		t.Error("True must match")
	}
	if False().Matches(tp) {
		t.Error("False must not match")
	}
}

func TestFilterKeyAndTimeCmp(t *testing.T) {
	tp := &Tuple{Key: 100, Time: 5000}
	cases := []struct {
		f    *Filter
		want bool
	}{
		{KeyCmp(CmpEQ, 100), true},
		{KeyCmp(CmpEQ, 101), false},
		{KeyCmp(CmpNE, 100), false},
		{KeyCmp(CmpLT, 101), true},
		{KeyCmp(CmpLE, 100), true},
		{KeyCmp(CmpGT, 100), false},
		{KeyCmp(CmpGE, 100), true},
		{TimeCmp(CmpLT, 5001), true},
		{TimeCmp(CmpGT, 5000), false},
		{TimeCmp(CmpGE, 5000), true},
	}
	for i, c := range cases {
		if got := c.f.Matches(tp); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestFilterLogicalOps(t *testing.T) {
	tp := &Tuple{Key: 50}
	yes := KeyCmp(CmpEQ, 50)
	no := KeyCmp(CmpEQ, 51)
	if !And(yes, yes).Matches(tp) || And(yes, no).Matches(tp) {
		t.Error("And wrong")
	}
	if !Or(no, yes).Matches(tp) || Or(no, no).Matches(tp) {
		t.Error("Or wrong")
	}
	if Not(yes).Matches(tp) || !Not(no).Matches(tp) {
		t.Error("Not wrong")
	}
	if !And().Matches(tp) {
		t.Error("empty And must match (vacuous truth)")
	}
	if Or().Matches(tp) {
		t.Error("empty Or must not match")
	}
}

func TestFilterPayload(t *testing.T) {
	payload := make([]byte, 16)
	binary.BigEndian.PutUint64(payload[0:8], 777)
	copy(payload[8:], "deadbeef")
	tp := &Tuple{Payload: payload}

	if !PayloadU64(0, CmpEQ, 777).Matches(tp) {
		t.Error("PayloadU64 equality failed")
	}
	if PayloadU64(0, CmpGT, 777).Matches(tp) {
		t.Error("PayloadU64 GT should fail")
	}
	if PayloadU64(12, CmpEQ, 0).Matches(tp) {
		t.Error("out-of-bounds PayloadU64 must reject")
	}
	if !PayloadBytes(8, CmpEQ, []byte("deadbeef")).Matches(tp) {
		t.Error("PayloadBytes equality failed")
	}
	if !PayloadBytes(8, CmpLT, []byte("zzzz")).Matches(tp) {
		t.Error("PayloadBytes LT failed")
	}
	if PayloadBytes(14, CmpEQ, []byte("longer-than-rest")).Matches(tp) {
		t.Error("out-of-bounds PayloadBytes must reject")
	}
}

func TestFilterKeyMod(t *testing.T) {
	if !KeyMod(10, 3).Matches(&Tuple{Key: 13}) {
		t.Error("13 mod 10 == 3 should match")
	}
	if KeyMod(10, 3).Matches(&Tuple{Key: 14}) {
		t.Error("14 mod 10 != 3 should not match")
	}
	if KeyMod(0, 0).Matches(&Tuple{Key: 14}) {
		t.Error("zero modulus must reject, not divide by zero")
	}
}

func TestFilterEncodeRoundTrip(t *testing.T) {
	f := And(
		KeyCmp(CmpGE, 100),
		Or(TimeCmp(CmpLT, 999), Not(PayloadBytes(4, CmpEQ, []byte("abc")))),
		KeyMod(7, 2),
		PayloadU64(8, CmpLE, 1<<40),
	)
	buf := AppendFilter(nil, f)
	got, n, err := DecodeFilter(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	// Behavioural equivalence on a spread of tuples.
	for k := uint64(0); k < 300; k += 7 {
		tp := &Tuple{Key: Key(k), Time: Timestamp(k * 13), Payload: []byte("abcdefghijklmnop")}
		if f.Matches(tp) != got.Matches(tp) {
			t.Fatalf("decoded filter disagrees at key %d", k)
		}
	}
}

func TestFilterDecodeGarbage(t *testing.T) {
	if _, _, err := DecodeFilter([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer should fail")
	}
	// A filter claiming 2^31 children must fail, not OOM.
	f := True()
	buf := AppendFilter(nil, f)
	binary.BigEndian.PutUint32(buf[len(buf)-4:], 1<<31-1)
	if _, _, err := DecodeFilter(buf); err == nil {
		t.Error("absurd child count should fail")
	}
}

func TestFilterEncodeQuick(t *testing.T) {
	// Round-tripped leaf filters must agree with the originals on random tuples.
	f := func(op uint8, cmp uint8, uv uint64, iv int64, key uint64, ts int64) bool {
		leaf := &Filter{
			Op:   FilterOp(op%4) + FilterKeyCmp, // one of the comparison leaves
			Cmp:  CmpOp(cmp % 6),
			Uint: uv,
			Int:  iv,
		}
		dec, _, err := DecodeFilter(AppendFilter(nil, leaf))
		if err != nil {
			return false
		}
		tp := &Tuple{Key: Key(key), Time: Timestamp(ts), Payload: make([]byte, 16)}
		return leaf.Matches(tp) == dec.Matches(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
