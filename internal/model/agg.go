package model

import (
	"encoding/binary"
	"fmt"
)

// AggKind selects which aggregate an AggregateQuery returns.
type AggKind uint8

const (
	// AggCount counts the matching tuples.
	AggCount AggKind = iota
	// AggMin is the minimum of the designated payload field.
	AggMin
	// AggMax is the maximum of the designated payload field.
	AggMax
	// AggSum is the (wrapping uint64) sum of the designated payload field.
	AggSum
)

// String implements fmt.Stringer.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggSum:
		return "sum"
	}
	return fmt.Sprintf("aggkind(%d)", uint8(k))
}

// ParseAggKind parses the textual aggregate names used by tooling.
func ParseAggKind(s string) (AggKind, error) {
	switch s {
	case "count":
		return AggCount, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "sum":
		return AggSum, nil
	}
	return 0, fmt.Errorf("model: unknown aggregate kind %q", s)
}

// AggregateQuery is an aggregate over a key range × time range: the
// COUNT/MIN/MAX/SUM query verb. MIN/MAX/SUM read the big-endian uint64
// payload field at byte offset Field; tuples whose payload is shorter than
// Field+8 are counted but contribute no value.
type AggregateQuery struct {
	// ID identifies the query within the cluster; assigned by the
	// coordinator when zero.
	ID uint64
	// Keys is the selection interval on the key domain.
	Keys KeyRange
	// Times is the selection interval on the time domain.
	Times TimeRange
	// Filter is the optional predicate. A non-nil filter disables all
	// metadata pushdown: every candidate leaf is scanned.
	Filter *Filter
	// Kind is the requested aggregate.
	Kind AggKind
	// Field is the payload byte offset of the aggregated uint64.
	Field uint32
}

// Region returns the query region.
func (q *AggregateQuery) Region() Region { return Region{Keys: q.Keys, Times: q.Times} }

// AggSpec rides on a SubQuery to turn it into an aggregate subquery: the
// executor folds matching tuples into Result.Agg instead of returning
// them, answering fully covered leaves from chunk-header pre-aggregates
// where possible.
type AggSpec struct {
	// Field is the payload byte offset of the aggregated uint64.
	Field uint32
	// CountOnly marks a COUNT query: tuple counts push down from any
	// chunk regardless of which field its pre-aggregates summarize, and
	// executors skip field extraction entirely.
	CountOnly bool
}

// AggPartial is a mergeable partial aggregate. Min/Max are meaningful only
// when Values > 0; Sum wraps modulo 2^64.
type AggPartial struct {
	// Count is the number of matching tuples.
	Count uint64
	// Values is the number of matching tuples that carried the aggregate
	// field (payload length >= field offset + 8).
	Values uint64
	Sum    uint64
	Min    uint64
	Max    uint64
}

// AddValue folds one field value.
func (a *AggPartial) AddValue(v uint64) {
	if a.Values == 0 || v < a.Min {
		a.Min = v
	}
	if a.Values == 0 || v > a.Max {
		a.Max = v
	}
	a.Values++
	a.Sum += v
}

// AddTuple folds one matching tuple, extracting the field at offset when
// the payload carries it.
func (a *AggPartial) AddTuple(t *Tuple, field uint32) {
	a.Count++
	if int64(field)+8 <= int64(len(t.Payload)) {
		a.AddValue(binary.BigEndian.Uint64(t.Payload[field:]))
	}
}

// Merge folds o into a.
func (a *AggPartial) Merge(o *AggPartial) {
	if o == nil {
		return
	}
	a.Count += o.Count
	if o.Values > 0 {
		if a.Values == 0 || o.Min < a.Min {
			a.Min = o.Min
		}
		if a.Values == 0 || o.Max > a.Max {
			a.Max = o.Max
		}
		a.Values += o.Values
		a.Sum += o.Sum
	}
}

// ChunkAgg is a chunk-level aggregate summary registered with the chunk's
// metadata, letting the coordinator answer aggregate subqueries over fully
// covered chunks without dispatching them at all.
type ChunkAgg struct {
	// Field is the payload offset the summary was built over.
	Field uint32
	AggPartial
}

// AggResult is the answer to an AggregateQuery: the merged aggregate plus
// execution metadata mirroring Result's counters.
type AggResult struct {
	QueryID uint64
	Kind    AggKind
	AggPartial
	// SubQueries is the number of dispatched subqueries (fully covered
	// chunks answered from metadata are not dispatched; see MetaChunks).
	SubQueries int
	// MetaChunks counts chunks answered wholly from coordinator metadata.
	MetaChunks int
	// PushdownLeaves counts leaves answered from header pre-aggregates
	// without reading the leaf body.
	PushdownLeaves int
	// LeavesRead counts leaves whose bodies were scanned.
	LeavesRead int
	// LeavesSkipped counts leaves pruned by time sketches.
	LeavesSkipped int
	// BytesRead counts chunk bytes fetched from the file system.
	BytesRead int64
	// CacheHits counts query-server cache-unit hits.
	CacheHits int
}

// Value returns the requested aggregate. ok is false when the aggregate is
// undefined: MIN/MAX over zero valued tuples. (SUM of nothing is 0 and
// COUNT of nothing is 0; both are defined.)
func (r *AggResult) Value() (uint64, bool) {
	switch r.Kind {
	case AggCount:
		return r.Count, true
	case AggSum:
		return r.Sum, true
	case AggMin:
		return r.Min, r.Values > 0
	case AggMax:
		return r.Max, r.Values > 0
	}
	return 0, false
}
