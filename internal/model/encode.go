package model

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary layout of an encoded tuple:
//
//	[8B key][8B timestamp][4B payload length][payload bytes]
//
// All integers are big-endian so encoded tuples sort like their keys when
// compared lexicographically on the key prefix.

// tupleHeaderSize is the fixed prefix of an encoded tuple.
const tupleHeaderSize = 8 + 8 + 4

// ErrShortBuffer is returned when a decode target does not contain a full
// encoded tuple.
var ErrShortBuffer = errors.New("model: buffer too short for encoded tuple")

// EncodedSize returns the number of bytes AppendTuple will write for t.
func EncodedSize(t *Tuple) int { return tupleHeaderSize + len(t.Payload) }

// AppendTuple appends the binary encoding of t to dst and returns the
// extended slice.
func AppendTuple(dst []byte, t *Tuple) []byte {
	var hdr [tupleHeaderSize]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(t.Key))
	binary.BigEndian.PutUint64(hdr[8:16], uint64(t.Time))
	binary.BigEndian.PutUint32(hdr[16:20], uint32(len(t.Payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, t.Payload...)
	return dst
}

// DecodeTuple decodes one tuple from the front of buf, returning the tuple
// and the number of bytes consumed. The returned payload aliases buf; copy
// it if buf is reused.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	if len(buf) < tupleHeaderSize {
		return Tuple{}, 0, ErrShortBuffer
	}
	n := int(binary.BigEndian.Uint32(buf[16:20]))
	total := tupleHeaderSize + n
	if len(buf) < total {
		return Tuple{}, 0, fmt.Errorf("%w: need %d bytes, have %d", ErrShortBuffer, total, len(buf))
	}
	return Tuple{
		Key:     Key(binary.BigEndian.Uint64(buf[0:8])),
		Time:    Timestamp(binary.BigEndian.Uint64(buf[8:16])),
		Payload: buf[tupleHeaderSize:total],
	}, total, nil
}

// AppendTuples appends the encodings of all tuples to dst.
func AppendTuples(dst []byte, ts []Tuple) []byte {
	for i := range ts {
		dst = AppendTuple(dst, &ts[i])
	}
	return dst
}

// CountTuples walks the tuple headers in buf and returns how many encoded
// tuples it holds, without touching payload bytes. It errors where a
// decode of the same buffer would.
func CountTuples(buf []byte) (int, error) {
	n := 0
	for len(buf) > 0 {
		if len(buf) < tupleHeaderSize {
			return 0, ErrShortBuffer
		}
		total := tupleHeaderSize + int(binary.BigEndian.Uint32(buf[16:20]))
		if len(buf) < total {
			return 0, fmt.Errorf("%w: need %d bytes, have %d", ErrShortBuffer, total, len(buf))
		}
		buf = buf[total:]
		n++
	}
	return n, nil
}

// DecodeTuples decodes every tuple in buf. Payloads alias buf. The result
// is allocated exactly: a cheap header walk counts the tuples first, so
// the append loop never reallocates.
func DecodeTuples(buf []byte) ([]Tuple, error) {
	n, err := CountTuples(buf)
	if err != nil {
		return nil, err
	}
	return DecodeTuplesInto(make([]Tuple, 0, n), buf)
}

// DecodeTuplesInto appends every tuple in buf to dst — the capacity-hint
// form of DecodeTuples for callers that know the count (e.g. from a chunk
// leaf directory) or reuse a scratch slice. Payloads alias buf.
func DecodeTuplesInto(dst []Tuple, buf []byte) ([]Tuple, error) {
	for len(buf) > 0 {
		t, n, err := DecodeTuple(buf)
		if err != nil {
			return nil, err
		}
		dst = append(dst, t)
		buf = buf[n:]
	}
	return dst, nil
}
