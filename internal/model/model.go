// Package model defines the core data model of Waterwheel: tuples carrying
// an index key, a timestamp and an opaque payload, plus the key/time
// intervals and key×time regions used throughout partitioning, indexing and
// query processing (paper §II-A).
package model

import (
	"fmt"
	"math"
)

// Key is the index key of a tuple. The key domain K is the full uint64
// space; applications map their natural keys (IP addresses, z-ordered
// coordinates, sensor ids) into it.
type Key uint64

// MaxKey is the largest representable key.
const MaxKey Key = math.MaxUint64

// Timestamp is a point in the time domain T, in milliseconds. The domain
// grows without bound; tuples are assumed to arrive roughly in timestamp
// order.
type Timestamp int64

// MaxTimestamp is the largest representable timestamp.
const MaxTimestamp Timestamp = math.MaxInt64

// MinTimestamp is the smallest representable timestamp.
const MinTimestamp Timestamp = math.MinInt64

// Tuple is the unit of ingestion: d = <dk, dt, de> with index key dk,
// timestamp dt and payload de. Keys and timestamps need not be unique.
type Tuple struct {
	Key     Key
	Time    Timestamp
	Payload []byte
}

// Size returns the approximate wire/storage footprint of the tuple in
// bytes: 8 bytes of key, 8 bytes of timestamp, plus the payload.
func (t *Tuple) Size() int { return 16 + len(t.Payload) }

// String implements fmt.Stringer for debugging output.
func (t *Tuple) String() string {
	return fmt.Sprintf("tuple(key=%d, time=%d, %dB)", t.Key, t.Time, len(t.Payload))
}

// KeyRange is a closed interval K(k-, k+) = {k | k- <= k <= k+} on the key
// domain.
type KeyRange struct {
	Lo, Hi Key
}

// FullKeyRange covers the entire key domain.
func FullKeyRange() KeyRange { return KeyRange{Lo: 0, Hi: MaxKey} }

// Contains reports whether k lies inside the interval.
func (r KeyRange) Contains(k Key) bool { return r.Lo <= k && k <= r.Hi }

// Overlaps reports whether the two intervals intersect.
func (r KeyRange) Overlaps(o KeyRange) bool { return r.Lo <= o.Hi && o.Lo <= r.Hi }

// Intersect returns the intersection of the two intervals and whether it is
// non-empty.
func (r KeyRange) Intersect(o KeyRange) (KeyRange, bool) {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo > hi {
		return KeyRange{}, false
	}
	return KeyRange{Lo: lo, Hi: hi}, true
}

// IsValid reports whether the interval is non-empty (Lo <= Hi).
func (r KeyRange) IsValid() bool { return r.Lo <= r.Hi }

// Width returns the number of keys covered, saturating at MaxUint64.
func (r KeyRange) Width() uint64 {
	if !r.IsValid() {
		return 0
	}
	w := uint64(r.Hi - r.Lo)
	if w == math.MaxUint64 {
		return w
	}
	return w + 1
}

// String implements fmt.Stringer.
func (r KeyRange) String() string { return fmt.Sprintf("[%d, %d]", r.Lo, r.Hi) }

// TimeRange is a closed interval T(t-, t+) = {t | t- <= t <= t+} on the
// time domain.
type TimeRange struct {
	Lo, Hi Timestamp
}

// FullTimeRange covers the entire time domain.
func FullTimeRange() TimeRange { return TimeRange{Lo: MinTimestamp, Hi: MaxTimestamp} }

// Contains reports whether t lies inside the interval.
func (r TimeRange) Contains(t Timestamp) bool { return r.Lo <= t && t <= r.Hi }

// Overlaps reports whether the two intervals intersect.
func (r TimeRange) Overlaps(o TimeRange) bool { return r.Lo <= o.Hi && o.Lo <= r.Hi }

// Intersect returns the intersection of the two intervals and whether it is
// non-empty.
func (r TimeRange) Intersect(o TimeRange) (TimeRange, bool) {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo > hi {
		return TimeRange{}, false
	}
	return TimeRange{Lo: lo, Hi: hi}, true
}

// IsValid reports whether the interval is non-empty (Lo <= Hi).
func (r TimeRange) IsValid() bool { return r.Lo <= r.Hi }

// Duration returns Hi-Lo in milliseconds (0 for invalid ranges).
func (r TimeRange) Duration() int64 {
	if !r.IsValid() {
		return 0
	}
	return int64(r.Hi - r.Lo)
}

// String implements fmt.Stringer.
func (r TimeRange) String() string { return fmt.Sprintf("[%d, %d]", r.Lo, r.Hi) }

// Region is a rectangle r = <K, T> in the two-dimensional key×time space R.
// Data regions partition R; query regions select from it.
type Region struct {
	Keys  KeyRange
	Times TimeRange
}

// FullRegion covers the entire key×time space.
func FullRegion() Region {
	return Region{Keys: FullKeyRange(), Times: FullTimeRange()}
}

// Overlaps reports whether two regions intersect: r1 overlaps r2 iff
// K1∩K2 != ∅ and T1∩T2 != ∅ (paper §II-A).
func (r Region) Overlaps(o Region) bool {
	return r.Keys.Overlaps(o.Keys) && r.Times.Overlaps(o.Times)
}

// Contains reports whether the point (k, t) lies inside the region.
func (r Region) Contains(k Key, t Timestamp) bool {
	return r.Keys.Contains(k) && r.Times.Contains(t)
}

// ContainsTuple reports whether the tuple's (key, time) point lies inside
// the region.
func (r Region) ContainsTuple(tp *Tuple) bool { return r.Contains(tp.Key, tp.Time) }

// Intersect returns the intersection region and whether it is non-empty.
func (r Region) Intersect(o Region) (Region, bool) {
	k, ok := r.Keys.Intersect(o.Keys)
	if !ok {
		return Region{}, false
	}
	t, ok := r.Times.Intersect(o.Times)
	if !ok {
		return Region{}, false
	}
	return Region{Keys: k, Times: t}, true
}

// IsValid reports whether both intervals are non-empty.
func (r Region) IsValid() bool { return r.Keys.IsValid() && r.Times.IsValid() }

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("region(keys=%s, times=%s)", r.Keys, r.Times)
}
