package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKeyRangeContains(t *testing.T) {
	r := KeyRange{Lo: 10, Hi: 20}
	cases := []struct {
		k    Key
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {20, true}, {21, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.k); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestKeyRangeOverlapsAndIntersect(t *testing.T) {
	a := KeyRange{Lo: 10, Hi: 20}
	cases := []struct {
		b       KeyRange
		overlap bool
		lo, hi  Key
	}{
		{KeyRange{0, 9}, false, 0, 0},
		{KeyRange{0, 10}, true, 10, 10},
		{KeyRange{15, 30}, true, 15, 20},
		{KeyRange{21, 30}, false, 0, 0},
		{KeyRange{12, 13}, true, 12, 13},
		{KeyRange{0, 100}, true, 10, 20},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.overlap {
			t.Errorf("Overlaps(%v) = %v, want %v", c.b, got, c.overlap)
		}
		got, ok := a.Intersect(c.b)
		if ok != c.overlap {
			t.Fatalf("Intersect(%v) ok = %v, want %v", c.b, ok, c.overlap)
		}
		if ok && (got.Lo != c.lo || got.Hi != c.hi) {
			t.Errorf("Intersect(%v) = %v, want [%d,%d]", c.b, got, c.lo, c.hi)
		}
	}
}

func TestKeyRangeWidth(t *testing.T) {
	if w := (KeyRange{Lo: 5, Hi: 5}).Width(); w != 1 {
		t.Errorf("singleton width = %d, want 1", w)
	}
	if w := (KeyRange{Lo: 5, Hi: 4}).Width(); w != 0 {
		t.Errorf("empty width = %d, want 0", w)
	}
	if w := FullKeyRange().Width(); w != math.MaxUint64 {
		t.Errorf("full width = %d, want MaxUint64 (saturated)", w)
	}
}

func TestTimeRangeBasics(t *testing.T) {
	r := TimeRange{Lo: 100, Hi: 200}
	if !r.Contains(100) || !r.Contains(200) || r.Contains(99) || r.Contains(201) {
		t.Error("TimeRange.Contains boundary behaviour wrong")
	}
	if r.Duration() != 100 {
		t.Errorf("Duration = %d, want 100", r.Duration())
	}
	if (TimeRange{Lo: 2, Hi: 1}).IsValid() {
		t.Error("inverted range should be invalid")
	}
}

func TestRegionOverlapNeedsBothDomains(t *testing.T) {
	a := Region{Keys: KeyRange{0, 10}, Times: TimeRange{0, 10}}
	sameKeysLaterTime := Region{Keys: KeyRange{5, 15}, Times: TimeRange{20, 30}}
	sameTimesOtherKeys := Region{Keys: KeyRange{11, 20}, Times: TimeRange{5, 6}}
	both := Region{Keys: KeyRange{10, 20}, Times: TimeRange{10, 20}}
	if a.Overlaps(sameKeysLaterTime) {
		t.Error("regions overlapping only in key domain must not overlap")
	}
	if a.Overlaps(sameTimesOtherKeys) {
		t.Error("regions overlapping only in time domain must not overlap")
	}
	if !a.Overlaps(both) {
		t.Error("regions overlapping in both domains must overlap")
	}
	got, ok := a.Intersect(both)
	if !ok || got.Keys != (KeyRange{10, 10}) || got.Times != (TimeRange{10, 10}) {
		t.Errorf("Intersect = %v ok=%v, want corner point", got, ok)
	}
}

func TestRegionContainsTuple(t *testing.T) {
	r := Region{Keys: KeyRange{10, 20}, Times: TimeRange{100, 200}}
	in := Tuple{Key: 15, Time: 150}
	outKey := Tuple{Key: 9, Time: 150}
	outTime := Tuple{Key: 15, Time: 250}
	if !r.ContainsTuple(&in) || r.ContainsTuple(&outKey) || r.ContainsTuple(&outTime) {
		t.Error("ContainsTuple wrong")
	}
}

func TestTupleEncodeDecodeRoundTrip(t *testing.T) {
	orig := Tuple{Key: 0xDEADBEEF, Time: -42, Payload: []byte("hello, waterwheel")}
	buf := AppendTuple(nil, &orig)
	if len(buf) != EncodedSize(&orig) {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), EncodedSize(&orig))
	}
	got, n, err := DecodeTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if got.Key != orig.Key || got.Time != orig.Time || string(got.Payload) != string(orig.Payload) {
		t.Errorf("round trip mismatch: %v vs %v", got, orig)
	}
}

func TestTupleDecodeShortBuffer(t *testing.T) {
	orig := Tuple{Key: 1, Time: 2, Payload: []byte("abcdef")}
	buf := AppendTuple(nil, &orig)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeTuple(buf[:cut]); err == nil {
			t.Fatalf("DecodeTuple accepted truncated buffer of %d bytes", cut)
		}
	}
}

func TestTuplesBatchRoundTrip(t *testing.T) {
	in := []Tuple{
		{Key: 1, Time: 10, Payload: []byte("a")},
		{Key: 2, Time: 20, Payload: nil},
		{Key: 3, Time: 30, Payload: []byte("ccc")},
	}
	buf := AppendTuples(nil, in)
	out, err := DecodeTuples(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d tuples, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Key != in[i].Key || out[i].Time != in[i].Time || string(out[i].Payload) != string(in[i].Payload) {
			t.Errorf("tuple %d mismatch: %v vs %v", i, out[i], in[i])
		}
	}
}

func TestTupleEncodeQuick(t *testing.T) {
	f := func(k uint64, ts int64, payload []byte) bool {
		orig := Tuple{Key: Key(k), Time: Timestamp(ts), Payload: payload}
		got, n, err := DecodeTuple(AppendTuple(nil, &orig))
		if err != nil || n != EncodedSize(&orig) {
			return false
		}
		return got.Key == orig.Key && got.Time == orig.Time &&
			string(got.Payload) == string(orig.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIntersectQuick(t *testing.T) {
	// Intersection must be symmetric and contained in both operands.
	f := func(a0, a1, b0, b1 uint64) bool {
		a := KeyRange{Lo: Key(min64(a0, a1)), Hi: Key(max64(a0, a1))}
		b := KeyRange{Lo: Key(min64(b0, b1)), Hi: Key(max64(b0, b1))}
		ab, okAB := a.Intersect(b)
		ba, okBA := b.Intersect(a)
		if okAB != okBA || okAB != a.Overlaps(b) {
			return false
		}
		if !okAB {
			return true
		}
		return ab == ba &&
			a.Contains(ab.Lo) && a.Contains(ab.Hi) &&
			b.Contains(ab.Lo) && b.Contains(ab.Hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
