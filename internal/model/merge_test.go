package model

import (
	"math/rand"
	"sort"
	"testing"
)

func sortedPart(rng *rand.Rand, n int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		out[i] = Tuple{
			Key:     Key(rng.Intn(100)),
			Time:    Timestamp(rng.Intn(100)),
			Payload: []byte{byte(rng.Intn(4))},
		}
	}
	sort.Slice(out, func(i, j int) bool { return CompareTuples(&out[i], &out[j]) < 0 })
	return out
}

// TestMergeSortedTuplesEquivalentToSort: the k-way merge of sorted runs
// must equal concatenating and sorting, for any limit.
func TestMergeSortedTuplesEquivalentToSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		k := rng.Intn(6)
		parts := make([][]Tuple, k)
		var all []Tuple
		for i := range parts {
			parts[i] = sortedPart(rng, rng.Intn(40))
			all = append(all, parts[i]...)
		}
		ref := Result{Tuples: all}
		ref.SortTuples()
		for _, limit := range []int{0, 1, 7, len(all), len(all) + 10} {
			got := MergeSortedTuples(parts, limit)
			want := ref.Tuples
			if limit > 0 && limit < len(want) {
				want = want[:limit]
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d limit %d: merged %d tuples, want %d", trial, limit, len(got), len(want))
			}
			for i := range got {
				if CompareTuples(&got[i], &want[i]) != 0 {
					t.Fatalf("trial %d limit %d tuple %d: %v != %v", trial, limit, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMergeSortedTuplesEdgeCases(t *testing.T) {
	if got := MergeSortedTuples(nil, 5); got != nil {
		t.Fatalf("merge of no parts = %v, want nil", got)
	}
	if got := MergeSortedTuples([][]Tuple{nil, {}, nil}, 0); got != nil {
		t.Fatalf("merge of empty parts = %v, want nil", got)
	}
	single := []Tuple{{Key: 1}, {Key: 2}, {Key: 3}}
	if got := MergeSortedTuples([][]Tuple{nil, single}, 2); len(got) != 2 || got[1].Key != 2 {
		t.Fatalf("single-part limit merge = %v", got)
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{Key: 1}, Tuple{Key: 2}, -1},
		{Tuple{Key: 2, Time: 5}, Tuple{Key: 2, Time: 3}, 1},
		{Tuple{Key: 2, Time: 3, Payload: []byte("a")}, Tuple{Key: 2, Time: 3, Payload: []byte("b")}, -1},
		{Tuple{Key: 2, Time: 3, Payload: []byte("x")}, Tuple{Key: 2, Time: 3, Payload: []byte("x")}, 0},
	}
	for i, c := range cases {
		if got := CompareTuples(&c.a, &c.b); got != c.want {
			t.Errorf("case %d: CompareTuples = %d, want %d", i, got, c.want)
		}
	}
}
