package model

import (
	"fmt"
	"sort"
)

// Query is a user query q = <Kq, Tq, fq>: selection criteria on the key and
// time domains plus an optional predicate (paper §II-A).
type Query struct {
	// ID identifies the query within the cluster; assigned by the
	// coordinator when zero.
	ID uint64
	// Keys is the selection interval on the key domain.
	Keys KeyRange
	// Times is the selection interval on the time domain.
	Times TimeRange
	// Filter is the user-defined predicate fq; nil accepts everything.
	Filter *Filter
	// Limit, when positive, caps the number of returned tuples: the
	// lowest-keyed Limit matches, in (key, time) order. Among tuples tying
	// at the cut-off key, which ones are returned is unspecified. Each
	// subquery also stops after Limit matches, bounding work.
	Limit int
	// Recur, when non-nil, restricts Times to a repeating window — "between
	// 09:00 and 17:00 daily". The coordinator expands the recurrence into
	// concrete windows inside Times and answers them through the metadata
	// time-bucket hierarchy, pruning chunks outside every window.
	Recur *Recurrence
}

// Recurrence is a repeating time-of-period window: within every period
// [k·Period, (k+1)·Period), timestamps in [k·Period+Start,
// k·Period+Start+Length) match. All fields are milliseconds; Start is the
// offset within the period (epoch-aligned, like the rest of the time
// domain). A daily 09:00–17:00 window is {Period: 86_400_000, Start:
// 32_400_000, Length: 28_800_000}.
type Recurrence struct {
	PeriodMillis int64
	StartMillis  int64
	LengthMillis int64
}

// maxRecurWindows bounds recurrence expansion; spans needing more
// windows fall back to the plain (unpruned) time range.
const maxRecurWindows = 100_000

// Windows expands the recurrence into the concrete windows intersecting
// span, clipped to it and in ascending order. Returns nil (caller falls
// back to the plain range) when the recurrence is malformed or the span
// covers too many periods to enumerate.
func (rc *Recurrence) Windows(span TimeRange) []TimeRange {
	if rc == nil || rc.PeriodMillis <= 0 || rc.LengthMillis <= 0 ||
		rc.LengthMillis > rc.PeriodMillis ||
		rc.StartMillis < 0 || rc.StartMillis >= rc.PeriodMillis ||
		span.Lo > span.Hi {
		return nil
	}
	// Keep every intermediate well inside int64 (the time domain is
	// milliseconds since the epoch; 2^61 ms is ~73M years).
	if span.Lo < -(1<<61) || span.Hi > 1<<61 {
		return nil
	}
	p, st, ln := rc.PeriodMillis, rc.StartMillis, rc.LengthMillis
	// Bound the expansion (and keep the k·p arithmetic below well inside
	// int64) before enumerating: a span covering more periods than
	// maxRecurWindows gets no expansion.
	if uint64(span.Hi-span.Lo)/uint64(p) > maxRecurWindows {
		return nil
	}
	// First period whose window could end at or after span.Lo.
	k := floorDivInt64(int64(span.Lo)-st-ln+1, p)
	out := make([]TimeRange, 0, 8)
	for ; ; k++ {
		lo, hi := k*p+st, k*p+st+ln-1
		if lo > int64(span.Hi) {
			break
		}
		if hi < int64(span.Lo) {
			continue
		}
		if lo < int64(span.Lo) {
			lo = int64(span.Lo)
		}
		if hi > int64(span.Hi) {
			hi = int64(span.Hi)
		}
		out = append(out, TimeRange{Lo: Timestamp(lo), Hi: Timestamp(hi)})
	}
	return out
}

// Contains reports whether ts falls inside the recurring window — the
// exact membership test complementing the hour-granular bucket pruning.
func (rc *Recurrence) Contains(ts Timestamp) bool {
	if rc == nil || rc.PeriodMillis <= 0 || rc.LengthMillis <= 0 {
		return false
	}
	off := int64(ts) - floorDivInt64(int64(ts), rc.PeriodMillis)*rc.PeriodMillis
	return off >= rc.StartMillis && off < rc.StartMillis+rc.LengthMillis
}

// floorDivInt64 is integer division rounding toward negative infinity.
func floorDivInt64(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Region returns the query region <Kq, Tq>.
func (q *Query) Region() Region { return Region{Keys: q.Keys, Times: q.Times} }

// String implements fmt.Stringer.
func (q *Query) String() string {
	return fmt.Sprintf("query(%d, keys=%s, times=%s)", q.ID, q.Keys, q.Times)
}

// ChunkID identifies an immutable data chunk in the distributed file
// system. IDs are allocated by the metadata server and are never reused.
type ChunkID uint64

// MemChunk is the sentinel chunk ID meaning "the in-memory B+ tree of an
// indexing server" rather than a flushed chunk.
const MemChunk ChunkID = 0

// SubQuery is one unit of parallel query execution: the intersection of a
// user query with a single data-region candidate (paper §IV-A). A subquery
// targets either a flushed chunk (Chunk != MemChunk, executed on a query
// server) or the live memtable of an indexing server (Chunk == MemChunk).
type SubQuery struct {
	QueryID uint64
	// Seq numbers subqueries within a query, for result accounting.
	Seq int
	// Region is the intersection of the query region with the candidate
	// data region.
	Region Region
	Filter *Filter
	// Limit caps matches per subquery (0 = unlimited). Executors visit
	// tuples in key order, so each subquery's first Limit matches are its
	// lowest-keyed ones — a superset of what the merged query needs.
	Limit int
	// Chunk is the flushed chunk to read, or MemChunk for memtable reads.
	Chunk ChunkID
	// IndexServer is the indexing-server id owning the memtable when
	// Chunk == MemChunk.
	IndexServer int
	// AsOfChunk is the query's plan horizon for memtable subqueries: the
	// smallest chunk ID that registered after the query was planned. The
	// indexing server serves a flushed-but-pending snapshot from memory iff
	// its chunk ID is at or above this horizon (the plan cannot have
	// included it). Zero means "live memtable only" — pending snapshots
	// whose chunks are registered are skipped entirely.
	AsOfChunk uint64
	// ChunkPath and ChunkHeaderLen thread the planned chunk's file metadata
	// from the coordinator's decomposition (which already holds the full
	// ChunkInfo) to the executing query server, so neither the dispatch
	// loop nor the executor repeats the metadata lookup. An empty ChunkPath
	// means "unplanned" — executors fall back to a metadata fetch, keeping
	// hand-built subqueries (tests, tools) working.
	ChunkPath      string
	ChunkHeaderLen int
	// Agg, when non-nil, turns this into an aggregate subquery: the
	// executor folds matching tuples into Result.Agg instead of returning
	// them, using chunk pre-aggregates where leaves are fully covered.
	Agg *AggSpec
}

// String implements fmt.Stringer.
func (s *SubQuery) String() string {
	if s.Chunk == MemChunk {
		return fmt.Sprintf("subquery(q%d#%d mem@is%d %s)", s.QueryID, s.Seq, s.IndexServer, s.Region)
	}
	return fmt.Sprintf("subquery(q%d#%d chunk%d %s)", s.QueryID, s.Seq, s.Chunk, s.Region)
}

// Result is the answer to a query: the qualifying tuples plus execution
// metadata useful to callers and experiments.
type Result struct {
	QueryID uint64
	Tuples  []Tuple
	// SubQueries is the number of subqueries the query decomposed into.
	SubQueries int
	// LeavesRead counts B+ tree leaves inspected across all subqueries.
	LeavesRead int
	// LeavesSkipped counts leaves pruned by time-range bloom filters.
	LeavesSkipped int
	// BytesRead counts chunk bytes fetched from the file system.
	BytesRead int64
	// CacheHits counts subquery cache-unit hits on query servers.
	CacheHits int
	// Agg is the partial aggregate of an aggregate subquery (SubQuery.Agg
	// set); nil on the tuple-returning path.
	Agg *AggPartial
	// AggPushdown counts leaves answered from header pre-aggregates
	// without reading the leaf body.
	AggPushdown int
}

// SortTuples orders the result tuples by (key, time, payload) so results
// are deterministic regardless of subquery completion order.
func (r *Result) SortTuples() {
	sort.Slice(r.Tuples, func(i, j int) bool {
		return CompareTuples(&r.Tuples[i], &r.Tuples[j]) < 0
	})
}

// Merge folds the tuples and counters of o into r.
func (r *Result) Merge(o *Result) {
	r.Tuples = append(r.Tuples, o.Tuples...)
	r.MergeCounters(o)
}

// MergeCounters folds only the execution counters of o into r, leaving the
// tuples alone — for callers that combine tuples separately (e.g. the
// coordinator's k-way merge).
func (r *Result) MergeCounters(o *Result) {
	r.LeavesRead += o.LeavesRead
	r.LeavesSkipped += o.LeavesSkipped
	r.BytesRead += o.BytesRead
	r.CacheHits += o.CacheHits
	r.AggPushdown += o.AggPushdown
	if o.Agg != nil {
		if r.Agg == nil {
			r.Agg = &AggPartial{}
		}
		r.Agg.Merge(o.Agg)
	}
}
