// Package dispatcher implements Waterwheel's dispatchers and the adaptive
// key partitioning mechanism (paper §III-D). Dispatchers route incoming
// tuples to indexing servers according to the global key partitioning
// schema, while sampling the key frequencies of their input streams in a
// sliding window. A centralized balancer periodically accumulates the
// samples from all dispatchers; if any indexing server's estimated load
// deviates beyond a threshold (paper: 20%) from the mean, it computes a new
// key partitioning that equalizes the load.
package dispatcher

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// Sink receives routed tuples; implemented by the ingest layer (WAL
// partitions in the full system). A Send error means the tuple was NOT
// accepted — the ack path must surface it to the producer instead of
// acknowledging a tuple the log cannot replay.
type Sink interface {
	Send(server int, t model.Tuple) error
	// SendBatch delivers a run of tuples bound for one server, returning
	// how many were accepted (a prefix: ts[:n]) and the error that stopped
	// the rest. n == len(ts) iff err == nil. Implementations that can
	// persist the run atomically must report either the whole run or none
	// of it, so the ack prefix never covers an unpersisted tuple.
	SendBatch(server int, ts []model.Tuple) (int, error)
}

// SinkFunc adapts a function to the Sink interface, with a per-tuple
// SendBatch loop as the default batch behavior.
type SinkFunc func(server int, t model.Tuple) error

// Send implements Sink.
func (f SinkFunc) Send(server int, t model.Tuple) error { return f(server, t) }

// SendBatch implements Sink by looping Send, stopping at the first error.
func (f SinkFunc) SendBatch(server int, ts []model.Tuple) (int, error) {
	for i, t := range ts {
		if err := f(server, t); err != nil {
			return i, err
		}
	}
	return len(ts), nil
}

// SamplerConfig tunes the sliding-window key sampler.
type SamplerConfig struct {
	// Buckets is the number of sub-windows in the sliding window; rotating
	// once drops the oldest sub-window (default 8).
	Buckets int
	// PerBucket caps the keys retained per sub-window; past it, reservoir
	// sampling keeps the sample uniform (default 1024).
	PerBucket int
	// SampleEvery observes only one in every SampleEvery dispatched tuples
	// (default 16), keeping the sampling cost off the ingestion fast path.
	SampleEvery int
	// Seed drives the reservoir choices.
	Seed int64
}

func (c *SamplerConfig) fill() {
	if c.Buckets <= 0 {
		c.Buckets = 8
	}
	if c.PerBucket <= 0 {
		c.PerBucket = 1024
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 16
	}
}

// Sampler keeps a uniform sample of the keys observed in the last
// Buckets sub-windows.
type Sampler struct {
	mu      sync.Mutex
	cfg     SamplerConfig
	buckets [][]model.Key
	seen    []int // observations in each bucket, for reservoir sampling
	cur     int
	rng     *rand.Rand
}

// NewSampler creates a sliding-window key sampler.
func NewSampler(cfg SamplerConfig) *Sampler {
	cfg.fill()
	s := &Sampler{
		cfg:     cfg,
		buckets: make([][]model.Key, cfg.Buckets),
		seen:    make([]int, cfg.Buckets),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	return s
}

// Observe records one key into the current sub-window.
func (s *Sampler) Observe(k model.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen[s.cur]++
	b := s.buckets[s.cur]
	if len(b) < s.cfg.PerBucket {
		s.buckets[s.cur] = append(b, k)
		return
	}
	// Reservoir: replace a random element with probability cap/seen.
	if j := s.rng.Intn(s.seen[s.cur]); j < s.cfg.PerBucket {
		b[j] = k
	}
}

// Rotate advances the sliding window, dropping the oldest sub-window. The
// cluster runtime calls this on a fixed cadence (paper: a few seconds).
func (s *Sampler) Rotate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur = (s.cur + 1) % s.cfg.Buckets
	s.buckets[s.cur] = s.buckets[s.cur][:0]
	s.seen[s.cur] = 0
}

// Sample returns a copy of every retained key in the window.
func (s *Sampler) Sample() []model.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []model.Key
	for _, b := range s.buckets {
		out = append(out, b...)
	}
	return out
}

// Dispatcher routes tuples by the current schema, sampling keys as it
// goes. Multiple dispatchers run concurrently, each with its own sampler.
type Dispatcher struct {
	mu          sync.RWMutex
	schema      meta.PartitionSchema
	sampler     *Sampler
	sink        Sink
	sampleEvery uint64
	dispatched  atomic.Uint64
}

// New creates a dispatcher with the given initial schema and sink.
func New(schema meta.PartitionSchema, sink Sink, samplerCfg SamplerConfig) *Dispatcher {
	samplerCfg.fill()
	return &Dispatcher{
		schema:      schema,
		sampler:     NewSampler(samplerCfg),
		sink:        sink,
		sampleEvery: uint64(samplerCfg.SampleEvery),
	}
}

// Dispatch routes one tuple, returning the chosen indexing server and the
// sink's verdict (a non-nil error means the tuple was not accepted). Only
// one in SampleEvery tuples enters the sampler, keeping per-tuple routing
// cheap.
func (d *Dispatcher) Dispatch(t model.Tuple) (int, error) {
	d.mu.RLock()
	server := d.schema.ServerFor(t.Key)
	d.mu.RUnlock()
	if d.dispatched.Add(1)%d.sampleEvery == 0 {
		d.sampler.Observe(t.Key)
	}
	return server, d.sink.Send(server, t)
}

// DispatchBatch routes a whole batch under one schema read: every
// tuple's server is computed in a single RLock pass, the batch is sliced
// into maximal contiguous same-server runs — contiguity preserves the
// client's order, which is what makes the accepted set an exact prefix
// when a run fails mid-batch — and each run goes to the sink with one
// SendBatch call. Returns how many tuples were accepted (ts[:n]) and the
// error that stopped the rest. Key sampling keeps the one-in-SampleEvery
// cadence with a single atomic add for the whole batch.
func (d *Dispatcher) DispatchBatch(ts []model.Tuple) (int, error) {
	if len(ts) == 0 {
		return 0, nil
	}
	if len(ts) == 1 {
		if _, err := d.Dispatch(ts[0]); err != nil {
			return 0, err
		}
		return 1, nil
	}
	servers := make([]int, len(ts))
	d.mu.RLock()
	for i := range ts {
		servers[i] = d.schema.ServerFor(ts[i].Key)
	}
	d.mu.RUnlock()
	base := d.dispatched.Add(uint64(len(ts))) - uint64(len(ts))
	for i := range ts {
		if (base+uint64(i)+1)%d.sampleEvery == 0 {
			d.sampler.Observe(ts[i].Key)
		}
	}
	accepted := 0
	for accepted < len(ts) {
		run := accepted + 1
		for run < len(ts) && servers[run] == servers[accepted] {
			run++
		}
		n, err := d.sink.SendBatch(servers[accepted], ts[accepted:run])
		accepted += n
		if err != nil {
			return accepted, err
		}
	}
	return accepted, nil
}

// UpdateSchema installs a newer partitioning schema; stale versions are
// ignored so concurrent pushes cannot roll back.
func (d *Dispatcher) UpdateSchema(s meta.PartitionSchema) {
	d.mu.Lock()
	if s.Version > d.schema.Version {
		d.schema = s
	}
	d.mu.Unlock()
}

// Schema returns the dispatcher's current schema.
func (d *Dispatcher) Schema() meta.PartitionSchema {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.schema
}

// Sampler exposes the dispatcher's key sampler (the balancer reads it).
func (d *Dispatcher) Sampler() *Sampler { return d.sampler }

// Dispatched returns the number of tuples routed by this dispatcher.
func (d *Dispatcher) Dispatched() uint64 { return d.dispatched.Load() }

// Balancer is the centralized process that evaluates the global key
// frequencies and recomputes the partitioning when load is skewed.
type Balancer struct {
	// Threshold is the relative deviation of the most loaded server that
	// triggers a repartition (paper: 0.2).
	Threshold float64
	// MinSample suppresses decisions on too little evidence.
	MinSample int

	// lastImbalance records the key-histogram imbalance measured by the
	// most recent Rebalance call (float64 bits), for telemetry gauges.
	lastImbalance atomic.Uint64
}

// LastImbalance returns the imbalance measured by the most recent
// Rebalance call: max_i |n_i - mean| / mean over the sampled key
// histogram. Zero until the balancer has run on a qualifying sample.
func (b *Balancer) LastImbalance() float64 {
	return math.Float64frombits(b.lastImbalance.Load())
}

// NewBalancer creates a balancer with the paper's 20% threshold.
func NewBalancer() *Balancer { return &Balancer{Threshold: 0.2, MinSample: 256} }

// Imbalance estimates each server's load share from the sample under the
// schema and returns the maximum relative deviation from the mean:
// max_i |n_i - mean| / mean. Returns 0 for empty samples.
func (b *Balancer) Imbalance(schema meta.PartitionSchema, sample []model.Key) float64 {
	active := schema.ActiveCount()
	if len(sample) == 0 || active < 2 {
		return 0
	}
	counts := make([]int, active)
	for _, k := range sample {
		counts[schema.PositionFor(k)]++
	}
	mean := float64(len(sample)) / float64(active)
	worst := 0.0
	for _, c := range counts {
		dev := float64(c) - mean
		if dev < 0 {
			dev = -dev
		}
		if dev/mean > worst {
			worst = dev / mean
		}
	}
	return worst
}

// Rebalance returns a new bound set equalizing the sampled load across
// servers, and whether a repartition is warranted. Bounds are quantile
// cuts of the sorted sample; duplicate cut keys are nudged apart so the
// schema stays strictly ascending. The trigger threshold is raised to the
// sampling noise floor (≈3σ of a multinomial share estimate) so small
// samples do not cause repartition thrash.
func (b *Balancer) Rebalance(schema meta.PartitionSchema, sample []model.Key) ([]model.Key, bool) {
	active := schema.ActiveCount()
	if len(sample) < b.MinSample || active < 2 {
		return nil, false
	}
	threshold := b.Threshold
	if noise := 3 * math.Sqrt(float64(active)/float64(len(sample))); noise > threshold {
		threshold = noise
	}
	imbalance := b.Imbalance(schema, sample)
	b.lastImbalance.Store(math.Float64bits(imbalance))
	if imbalance <= threshold {
		return nil, false
	}
	sorted := append([]model.Key(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	bounds := make([]model.Key, 0, active-1)
	for i := 1; i < active; i++ {
		idx := i * len(sorted) / active
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		bounds = append(bounds, sorted[idx])
	}
	// Enforce strict ascent (heavy duplicate keys can collapse quantiles).
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			bounds[i] = bounds[i-1] + 1
		}
	}
	// A final sanity check: the nudging above cannot overflow the domain in
	// any realistic sample, but guard against pathological all-MaxKey input.
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, false
		}
	}
	return bounds, true
}
