package dispatcher

import (
	"math/rand"
	"sync"
	"testing"

	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

type captureSink struct {
	mu    sync.Mutex
	byDst map[int][]model.Tuple
}

func newCaptureSink() *captureSink { return &captureSink{byDst: map[int][]model.Tuple{}} }

func (c *captureSink) Send(server int, t model.Tuple) error {
	c.mu.Lock()
	c.byDst[server] = append(c.byDst[server], t)
	c.mu.Unlock()
	return nil
}

func (c *captureSink) SendBatch(server int, ts []model.Tuple) (int, error) {
	for i, t := range ts {
		if err := c.Send(server, t); err != nil {
			return i, err
		}
	}
	return len(ts), nil
}

func TestDispatchRoutesBySchema(t *testing.T) {
	sink := newCaptureSink()
	schema := meta.PartitionSchema{Version: 1, Servers: 2, Bounds: []model.Key{100}}
	d := New(schema, sink, SamplerConfig{})
	if got, err := d.Dispatch(model.Tuple{Key: 50}); err != nil || got != 0 {
		t.Errorf("key 50 -> server %d (err %v)", got, err)
	}
	if got, err := d.Dispatch(model.Tuple{Key: 100}); err != nil || got != 1 {
		t.Errorf("key 100 -> server %d, want 1 (boundary key goes right; err %v)", got, err)
	}
	if got, err := d.Dispatch(model.Tuple{Key: 99}); err != nil || got != 0 {
		t.Errorf("key 99 -> server %d (err %v)", got, err)
	}
	if len(sink.byDst[0]) != 2 || len(sink.byDst[1]) != 1 {
		t.Errorf("sink distribution %v", sink.byDst)
	}
}

func TestUpdateSchemaVersioning(t *testing.T) {
	d := New(meta.PartitionSchema{Version: 2, Servers: 2, Bounds: []model.Key{100}}, newCaptureSink(), SamplerConfig{})
	// Stale update ignored.
	d.UpdateSchema(meta.PartitionSchema{Version: 1, Servers: 2, Bounds: []model.Key{999}})
	if d.Schema().Bounds[0] != 100 {
		t.Error("stale schema applied")
	}
	d.UpdateSchema(meta.PartitionSchema{Version: 3, Servers: 2, Bounds: []model.Key{500}})
	if d.Schema().Bounds[0] != 500 {
		t.Error("newer schema not applied")
	}
}

func TestSamplerWindowSlides(t *testing.T) {
	s := NewSampler(SamplerConfig{Buckets: 2, PerBucket: 100})
	for i := 0; i < 50; i++ {
		s.Observe(model.Key(1))
	}
	if got := len(s.Sample()); got != 50 {
		t.Fatalf("sample size %d", got)
	}
	s.Rotate()
	for i := 0; i < 30; i++ {
		s.Observe(model.Key(2))
	}
	if got := len(s.Sample()); got != 80 {
		t.Fatalf("after rotate sample size %d, want 80", got)
	}
	s.Rotate() // drops the 50 ones
	if got := len(s.Sample()); got != 30 {
		t.Fatalf("after second rotate %d, want 30", got)
	}
	for _, k := range s.Sample() {
		if k != 2 {
			t.Fatal("old keys survived the window")
		}
	}
}

func TestSamplerReservoirBounded(t *testing.T) {
	s := NewSampler(SamplerConfig{Buckets: 2, PerBucket: 64, Seed: 1})
	for i := 0; i < 10000; i++ {
		s.Observe(model.Key(i))
	}
	if got := len(s.Sample()); got != 64 {
		t.Fatalf("reservoir size %d, want 64", got)
	}
	// The reservoir should span the stream, not just its head.
	late := 0
	for _, k := range s.Sample() {
		if k >= 5000 {
			late++
		}
	}
	if late < 16 {
		t.Errorf("reservoir biased to stream head: only %d/64 late keys", late)
	}
}

func TestImbalanceUniformVsSkewed(t *testing.T) {
	b := NewBalancer()
	schema := meta.EvenSchema(4)
	rng := rand.New(rand.NewSource(5))
	uniform := make([]model.Key, 4000)
	for i := range uniform {
		uniform[i] = model.Key(rng.Uint64())
	}
	if imb := b.Imbalance(schema, uniform); imb > 0.15 {
		t.Errorf("uniform imbalance %f too high", imb)
	}
	skewed := make([]model.Key, 4000)
	for i := range skewed {
		skewed[i] = model.Key(rng.Intn(1000)) // all in server 0
	}
	if imb := b.Imbalance(schema, skewed); imb < 2.5 {
		t.Errorf("skewed imbalance %f too low (want ~3)", imb)
	}
	if b.Imbalance(schema, nil) != 0 {
		t.Error("empty sample should be balanced")
	}
}

func TestRebalanceProducesEvenSchema(t *testing.T) {
	b := NewBalancer()
	schema := meta.EvenSchema(4)
	rng := rand.New(rand.NewSource(6))
	// Normal-ish distribution centered low in the domain: heavily skewed
	// under the even schema.
	sample := make([]model.Key, 8000)
	for i := range sample {
		sample[i] = model.Key(1 << 20 * (1 + rng.Intn(100)))
	}
	bounds, ok := b.Rebalance(schema, sample)
	if !ok {
		t.Fatal("rebalance declined on a heavily skewed sample")
	}
	newSchema := meta.PartitionSchema{Version: 2, Servers: 4, Bounds: bounds}
	if imb := b.Imbalance(newSchema, sample); imb > 0.25 {
		t.Errorf("imbalance after rebalance %f", imb)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not ascending: %v", bounds)
		}
	}
}

func TestRebalanceDeclinesWhenBalanced(t *testing.T) {
	b := NewBalancer()
	schema := meta.EvenSchema(4)
	rng := rand.New(rand.NewSource(7))
	sample := make([]model.Key, 8000)
	for i := range sample {
		sample[i] = model.Key(rng.Uint64())
	}
	if _, ok := b.Rebalance(schema, sample); ok {
		t.Error("rebalance fired on balanced load")
	}
	// Too little evidence: declined even if skewed.
	if _, ok := b.Rebalance(schema, sample[:10]); ok {
		t.Error("rebalance fired below MinSample")
	}
}

func TestRebalanceHeavyDuplicates(t *testing.T) {
	b := NewBalancer()
	schema := meta.EvenSchema(4)
	sample := make([]model.Key, 1000)
	for i := range sample {
		sample[i] = 42 // every key identical
	}
	bounds, ok := b.Rebalance(schema, sample)
	if ok {
		// If it decides to rebalance, bounds must still be strictly
		// ascending (the nudge rule).
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("bounds not ascending: %v", bounds)
			}
		}
	}
}

func TestEndToEndAdaptiveLoop(t *testing.T) {
	// Dispatcher + balancer + metadata server cooperating: skewed stream
	// triggers a schema update that the dispatcher adopts.
	ms := meta.NewServer(4)
	sink := newCaptureSink()
	d := New(ms.Schema(), sink, SamplerConfig{Seed: 1})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		d.Dispatch(model.Tuple{Key: model.Key(rng.Intn(1 << 16))}) // all to server 0
	}
	b := NewBalancer()
	bounds, ok := b.Rebalance(d.Schema(), d.Sampler().Sample())
	if !ok {
		t.Fatal("balancer did not fire")
	}
	newSchema, err := ms.SetSchema(bounds)
	if err != nil {
		t.Fatal(err)
	}
	d.UpdateSchema(newSchema)
	// Fresh tuples now spread across servers.
	fresh := newCaptureSink()
	d2 := New(d.Schema(), fresh, SamplerConfig{})
	for i := 0; i < 4000; i++ {
		d2.Dispatch(model.Tuple{Key: model.Key(rng.Intn(1 << 16))})
	}
	for srv := 0; srv < 4; srv++ {
		n := len(fresh.byDst[srv])
		if n < 500 || n > 1500 {
			t.Errorf("server %d got %d/4000 after rebalance", srv, n)
		}
	}
}

func TestConcurrentDispatch(t *testing.T) {
	sink := newCaptureSink()
	d := New(meta.EvenSchema(4), sink, SamplerConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 1000; i++ {
				d.Dispatch(model.Tuple{Key: model.Key(rng.Uint64())})
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, v := range sink.byDst {
		total += len(v)
	}
	if total != 8000 {
		t.Errorf("dispatched %d, want 8000", total)
	}
}
