package dispatcher

import (
	"testing"

	"waterwheel/internal/meta"
	"waterwheel/internal/model"
)

// FuzzBalancerRebalance feeds arbitrary key samples and server counts to
// the balancer and checks the structural invariants any accepted
// repartition must satisfy: exactly Servers-1 bounds, strictly ascending
// (sorted and unique), and — via the PartitionSchema they induce — a
// contiguous cover of the full key domain with no gaps or overlaps.
func FuzzBalancerRebalance(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4))
	f.Add([]byte{0, 0, 0, 0}, uint8(2))         // heavy duplicates
	f.Add([]byte{255, 255, 255, 255}, uint8(8)) // all at the domain top
	f.Fuzz(func(t *testing.T, raw []byte, nsrv uint8) {
		servers := int(nsrv%16) + 2
		if len(raw) < 2 {
			return
		}
		// Tile the raw bytes into a sample large enough to clear MinSample,
		// so the fuzzer controls the distribution, not the sample size.
		b := NewBalancer()
		sample := make([]model.Key, 0, b.MinSample*2)
		for i := 0; len(sample) < b.MinSample*2; i++ {
			j := (i * 2) % (len(raw) - 1)
			k := model.Key(raw[j])<<8 | model.Key(raw[j+1])
			// Shift some keys high so samples are not confined to 16 bits.
			if i%3 == 0 {
				k <<= 40
			}
			sample = append(sample, k)
		}
		schema := meta.EvenSchema(servers)
		bounds, ok := b.Rebalance(schema, sample)
		if !ok {
			return
		}
		if len(bounds) != servers-1 {
			t.Fatalf("got %d bounds for %d servers", len(bounds), servers)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("bounds not strictly ascending at %d: %v", i, bounds)
			}
		}
		// The induced schema must cover the whole key domain contiguously.
		ns := meta.PartitionSchema{Version: 2, Servers: servers, Bounds: bounds}
		prev := model.KeyRange{}
		for i := 0; i < servers; i++ {
			iv := ns.IntervalOf(i)
			if iv.Lo > iv.Hi {
				t.Fatalf("server %d has an empty interval %v (bounds %v)", i, iv, bounds)
			}
			if i == 0 {
				if iv.Lo != 0 {
					t.Fatalf("domain does not start at 0: %v", iv)
				}
			} else if iv.Lo != prev.Hi+1 {
				t.Fatalf("gap/overlap between server %d (%v) and %d (%v)", i-1, prev, i, iv)
			}
			prev = iv
		}
		if prev.Hi != model.MaxKey {
			t.Fatalf("domain does not end at MaxKey: %v", prev)
		}
		// Spot-check routing consistency: every sampled key lands on a
		// valid server.
		for _, k := range sample[:32] {
			if s := ns.ServerFor(k); s < 0 || s >= servers {
				t.Fatalf("key %d routed to invalid server %d", k, s)
			}
		}
	})
}

// TestRebalanceBelowMinSample: too little evidence must never repartition.
func TestRebalanceBelowMinSample(t *testing.T) {
	b := NewBalancer()
	sample := make([]model.Key, b.MinSample-1)
	// Maximal skew: every key on one server — still suppressed.
	if _, ok := b.Rebalance(meta.EvenSchema(4), sample); ok {
		t.Fatal("repartitioned below MinSample")
	}
	if _, ok := b.Rebalance(meta.EvenSchema(4), nil); ok {
		t.Fatal("repartitioned on an empty sample")
	}
}

// TestRebalanceAllIdenticalKeys: a sample collapsed onto one key is the
// worst case for quantile cuts (all cuts equal). The balancer must either
// decline or produce strictly ascending bounds.
func TestRebalanceAllIdenticalKeys(t *testing.T) {
	b := NewBalancer()
	sample := make([]model.Key, 1024)
	for i := range sample {
		sample[i] = 42
	}
	bounds, ok := b.Rebalance(meta.EvenSchema(4), sample)
	if !ok {
		t.Fatal("identical-key skew not detected")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly ascending: %v", bounds)
		}
	}
	// The pathological mirror at the top of the domain must not overflow
	// past MaxKey into a non-ascending schema; declining is acceptable.
	for i := range sample {
		sample[i] = model.MaxKey
	}
	if bounds, ok := b.Rebalance(meta.EvenSchema(4), sample); ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("all-MaxKey sample produced invalid bounds: %v", bounds)
			}
		}
	}
}

// TestRebalanceDegenerateSchema: fewer than two servers means there is
// nothing to repartition, whatever the sample says.
func TestRebalanceDegenerateSchema(t *testing.T) {
	b := NewBalancer()
	sample := make([]model.Key, 1024)
	for i := range sample {
		sample[i] = model.Key(i)
	}
	if _, ok := b.Rebalance(meta.PartitionSchema{}, sample); ok {
		t.Fatal("repartitioned an empty schema")
	}
	if _, ok := b.Rebalance(meta.EvenSchema(1), sample); ok {
		t.Fatal("repartitioned a single-server schema")
	}
}

// TestRebalanceThresholdBoundary pins the trigger condition at the paper's
// 0.2 threshold exactly: imbalance == threshold stays put (strict >), one
// sample past it repartitions. The sample is large enough that the noise
// floor (3σ) sits below 0.2, so the nominal threshold is the one tested.
func TestRebalanceThresholdBoundary(t *testing.T) {
	b := NewBalancer()
	schema := meta.EvenSchema(2)
	split := schema.Bounds[0]
	mk := func(low, high int) []model.Key {
		s := make([]model.Key, 0, low+high)
		for i := 0; i < low; i++ {
			s = append(s, model.Key(i))
		}
		for i := 0; i < high; i++ {
			s = append(s, split+model.Key(i))
		}
		return s
	}
	// 600/400 of 1000: imbalance = |600-500|/500 = 0.2 — not strictly
	// above the threshold, so no repartition.
	if _, ok := b.Rebalance(schema, mk(600, 400)); ok {
		t.Fatalf("repartitioned at imbalance exactly 0.2 (measured %v)", b.LastImbalance())
	}
	if got := b.LastImbalance(); got != 0.2 {
		t.Fatalf("LastImbalance = %v, want 0.2", got)
	}
	// 601/399: imbalance 0.202 — strictly above, repartition.
	bounds, ok := b.Rebalance(schema, mk(601, 399))
	if !ok {
		t.Fatalf("no repartition just past the threshold (measured %v)", b.LastImbalance())
	}
	if len(bounds) != 1 {
		t.Fatalf("bounds = %v, want one separator", bounds)
	}
	// The new cut must move the split toward the loaded half.
	if bounds[0] >= split {
		t.Fatalf("separator %d did not move toward the hot range (was %d)", bounds[0], split)
	}
}
