package baseline

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"waterwheel/internal/dfs"
	"waterwheel/internal/model"
)

// TSConfig tunes the Druid-like time-segment store.
type TSConfig struct {
	// SegmentBytes seals the in-memory segment at this size (default
	// 16 MB).
	SegmentBytes int64
	// SparseEvery is the time-index stride in tuples (default 64).
	SparseEvery int
	// Node is the cluster node issuing file-system I/O.
	Node int
}

func (c *TSConfig) fill() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 16 << 20
	}
	if c.SparseEvery <= 0 {
		c.SparseEvery = 64
	}
}

// segment is one sealed, time-sorted segment on the file system.
type segment struct {
	path       string
	count      int
	minT, maxT model.Timestamp
	size       int64
}

// TS is a time-series store in the mould of Druid: data is partitioned
// into time segments, each time-indexed, so temporal constraints prune
// well — but there is no key-range index, so a key constraint is checked
// by reading every tuple in the time range (paper Table I).
type TS struct {
	cfg TSConfig
	fs  *dfs.FS

	mu       sync.RWMutex
	cur      []model.Tuple
	curIdx   map[model.Key][]int32 // Druid-style inverted index on the key dimension
	curDict  map[model.Key]uint32  // dimension-value dictionary (Druid's string interning)
	curTime  map[int64][]int32     // secondary inverted index on the time-minute dimension
	curBytes int64
	segments []segment
	seq      int
}

var _ Store = (*TS)(nil)

// NewTS creates a time-segment store over the given file system.
func NewTS(cfg TSConfig, fs *dfs.FS) *TS {
	cfg.fill()
	return &TS{
		cfg: cfg, fs: fs,
		curIdx:  make(map[model.Key][]int32),
		curDict: make(map[model.Key]uint32),
		curTime: make(map[int64][]int32),
	}
}

// Insert appends to the live segment, sealing at the size threshold. Like
// Druid, ingestion maintains per-segment dimension structures — a value
// dictionary plus inverted indexes on the key and time-minute dimensions.
// They answer equality lookups, not range scans (paper Table I), and are
// the dominant per-tuple ingestion cost.
func (t *TS) Insert(tp model.Tuple) {
	t.mu.Lock()
	tp.Payload = append([]byte(nil), tp.Payload...)
	row := int32(len(t.cur))
	if _, ok := t.curDict[tp.Key]; !ok {
		t.curDict[tp.Key] = uint32(len(t.curDict))
	}
	t.curIdx[tp.Key] = append(t.curIdx[tp.Key], row)
	minute := int64(tp.Time) / 60_000
	t.curTime[minute] = append(t.curTime[minute], row)
	t.cur = append(t.cur, tp)
	t.curBytes += int64(tp.Size())
	seal := t.curBytes >= t.cfg.SegmentBytes
	t.mu.Unlock()
	if seal {
		t.Flush()
	}
}

// Flush seals the live segment to the file system.
func (t *TS) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.cur) == 0 {
		return
	}
	tuples := t.cur
	t.cur = nil
	t.curIdx = make(map[model.Key][]int32)
	t.curDict = make(map[model.Key]uint32)
	t.curTime = make(map[int64][]int32)
	t.curBytes = 0
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Time < tuples[j].Time })

	// Layout: [tuples, time-sorted][sparse index {time,offset}…]
	// [footer: idxOff(8) idxN(4) count(4) minT(8) maxT(8)].
	var data []byte
	type idxEntry struct {
		ts  model.Timestamp
		off int64
	}
	var idx []idxEntry
	for i := range tuples {
		if i%t.cfg.SparseEvery == 0 {
			idx = append(idx, idxEntry{ts: tuples[i].Time, off: int64(len(data))})
		}
		data = model.AppendTuple(data, &tuples[i])
	}
	idxOff := int64(len(data))
	var tmp [8]byte
	for _, e := range idx {
		binary.BigEndian.PutUint64(tmp[:], uint64(e.ts))
		data = append(data, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(e.off))
		data = append(data, tmp[:]...)
	}
	binary.BigEndian.PutUint64(tmp[:], uint64(idxOff))
	data = append(data, tmp[:]...)
	var tmp4 [4]byte
	binary.BigEndian.PutUint32(tmp4[:], uint32(len(idx)))
	data = append(data, tmp4[:]...)
	binary.BigEndian.PutUint32(tmp4[:], uint32(len(tuples)))
	data = append(data, tmp4[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(tuples[0].Time))
	data = append(data, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(tuples[len(tuples)-1].Time))
	data = append(data, tmp[:]...)

	t.seq++
	path := fmt.Sprintf("ts/seg%d", t.seq)
	if err := t.fs.Write(path, data); err != nil {
		panic(fmt.Sprintf("baseline: segment write: %v", err))
	}
	t.segments = append(t.segments, segment{
		path:  path,
		count: len(tuples),
		minT:  tuples[0].Time,
		maxT:  tuples[len(tuples)-1].Time,
		size:  int64(len(data)),
	})
}

// readSegmentRange reads the tuples of a segment within a time range. The
// second return value is the number of data bytes fetched and decoded.
func (t *TS) readSegmentRange(s segment, tr model.TimeRange) ([]model.Tuple, int64, error) {
	size, err := t.fs.Size(s.path)
	if err != nil {
		return nil, 0, err
	}
	const footer = 8 + 4 + 4 + 8 + 8
	fbuf, _, err := t.fs.ReadAt(s.path, size-footer, footer, t.cfg.Node)
	if err != nil {
		return nil, 0, err
	}
	idxOff := int64(binary.BigEndian.Uint64(fbuf[0:8]))
	idxN := int(binary.BigEndian.Uint32(fbuf[8:12]))
	ibuf, _, err := t.fs.ReadAt(s.path, idxOff, int64(idxN)*16, t.cfg.Node)
	if err != nil {
		return nil, 0, err
	}
	times := make([]model.Timestamp, idxN)
	offs := make([]int64, idxN)
	for i := 0; i < idxN; i++ {
		times[i] = model.Timestamp(binary.BigEndian.Uint64(ibuf[i*16:]))
		offs[i] = int64(binary.BigEndian.Uint64(ibuf[i*16+8:]))
	}
	start := sort.Search(idxN, func(i int) bool { return times[i] > tr.Lo }) - 1
	if start < 0 {
		start = 0
	}
	end := sort.Search(idxN, func(i int) bool { return times[i] > tr.Hi })
	var endOff int64
	if end >= idxN {
		endOff = idxOff
	} else {
		endOff = offs[end]
	}
	startOff := offs[start]
	if startOff >= endOff {
		return nil, 0, nil
	}
	dbuf, _, err := t.fs.ReadAt(s.path, startOff, endOff-startOff, t.cfg.Node)
	if err != nil {
		return nil, 0, err
	}
	read := endOff - startOff
	var out []model.Tuple
	for len(dbuf) > 0 {
		tp, n, err := model.DecodeTuple(dbuf)
		if err != nil {
			return nil, 0, err
		}
		dbuf = dbuf[n:]
		if tp.Time > tr.Hi {
			break
		}
		if tp.Time >= tr.Lo {
			tp.Payload = append([]byte(nil), tp.Payload...)
			out = append(out, tp)
		}
	}
	return out, read, nil
}

// Query prunes segments by time, reads the matching time extents, and
// post-filters by key — the store has no key-range index.
func (t *TS) Query(q model.Query) (*model.Result, error) {
	res := &model.Result{QueryID: q.ID}
	t.mu.RLock()
	for i := range t.cur {
		tp := &t.cur[i]
		if q.Times.Contains(tp.Time) && q.Keys.Contains(tp.Key) && q.Filter.Matches(tp) {
			cp := *tp
			cp.Payload = append([]byte(nil), tp.Payload...)
			res.Tuples = append(res.Tuples, cp)
		}
	}
	candidates := make([]segment, 0, len(t.segments))
	for _, s := range t.segments {
		if s.minT <= q.Times.Hi && s.maxT >= q.Times.Lo {
			candidates = append(candidates, s)
		}
	}
	t.mu.RUnlock()
	for _, s := range candidates {
		tuples, bytes, err := t.readSegmentRange(s, q.Times)
		if err != nil {
			return nil, err
		}
		res.BytesRead += bytes
		for i := range tuples {
			tp := &tuples[i]
			if q.Keys.Contains(tp.Key) && q.Filter.Matches(tp) {
				res.Tuples = append(res.Tuples, *tp)
			}
		}
	}
	res.SortTuples()
	return res, nil
}

// Segments returns the sealed segment count (for tests).
func (t *TS) Segments() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segments)
}

// MemLen returns the live-segment tuple count.
func (t *TS) MemLen() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.cur)
}

// Close implements Store.
func (t *TS) Close() {}
