// Package baseline implements the two comparison systems of the paper's
// overall evaluation (§VI-D): an LSM-tree key-value store modelled on
// HBase and a time-partitioned segment store modelled on Druid. Both run
// against the same simulated distributed file system as Waterwheel so the
// comparison isolates the architectural differences the paper attributes
// the gap to:
//
//   - the LSM store merges fresh data into historical runs (compaction),
//     capping insertion throughput, and has no temporal index — a time
//     constraint is checked by reading every tuple in the key range;
//   - the segment store prunes by time but has no key-range index — a key
//     constraint is checked by reading every tuple in the time range.
package baseline

import "waterwheel/internal/model"

// Store is the interface the overall-comparison experiments drive. All
// three systems (Waterwheel and the two baselines) are adapted to it.
type Store interface {
	// Insert ingests one tuple; safe for concurrent use.
	Insert(t model.Tuple)
	// Query answers a key+time range query with an optional filter.
	Query(q model.Query) (*model.Result, error)
	// Flush forces buffered data to persistent storage.
	Flush()
	// Close releases resources.
	Close()
}
