package baseline

import (
	"math/rand"
	"testing"
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/model"
)

func testFS() *dfs.FS {
	return dfs.New(dfs.Config{Nodes: 3, Replication: 2, Seed: 1, Sleep: func(time.Duration) {}})
}

// refQuery is the linear-scan ground truth.
func refQuery(tuples []model.Tuple, q model.Query) int {
	n := 0
	for i := range tuples {
		t := &tuples[i]
		if q.Keys.Contains(t.Key) && q.Times.Contains(t.Time) && q.Filter.Matches(t) {
			n++
		}
	}
	return n
}

func randTuples(n int, rng *rand.Rand) []model.Tuple {
	out := make([]model.Tuple, n)
	for i := range out {
		out[i] = model.Tuple{
			Key:     model.Key(rng.Intn(100_000)),
			Time:    model.Timestamp(i), // in arrival order
			Payload: []byte{byte(i), byte(i >> 8)},
		}
	}
	return out
}

func randQueries(n int, rng *rand.Rand) []model.Query {
	out := make([]model.Query, n)
	for i := range out {
		k0 := model.Key(rng.Intn(100_000))
		t0 := model.Timestamp(rng.Intn(20_000))
		out[i] = model.Query{
			Keys:  model.KeyRange{Lo: k0, Hi: k0 + model.Key(rng.Intn(20_000))},
			Times: model.TimeRange{Lo: t0, Hi: t0 + model.Timestamp(rng.Intn(5_000))},
		}
	}
	return out
}

func TestLSMCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	store := NewLSM(LSMConfig{MemBytes: 8 << 10, MaxRunsPerLevel: 3}, testFS())
	defer store.Close()
	tuples := randTuples(10_000, rng)
	for _, tp := range tuples {
		store.Insert(tp)
	}
	if store.Runs() == 0 {
		t.Fatal("no runs flushed — threshold never tripped")
	}
	for _, q := range randQueries(30, rng) {
		res, err := store.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := refQuery(tuples, q); len(res.Tuples) != want {
			t.Fatalf("query %v: got %d, want %d", q, len(res.Tuples), want)
		}
	}
}

func TestLSMCompactionBounds(t *testing.T) {
	store := NewLSM(LSMConfig{MemBytes: 4 << 10, MaxRunsPerLevel: 2}, testFS())
	rng := rand.New(rand.NewSource(2))
	for _, tp := range randTuples(20_000, rng) {
		store.Insert(tp)
	}
	// Size-tiered compaction keeps the run count bounded well below the
	// flush count (20k tuples / ~200 per memtable ≈ 100 flushes).
	if r := store.Runs(); r > 12 {
		t.Errorf("compaction not bounding runs: %d", r)
	}
}

func TestLSMMemtableVisibleBeforeFlush(t *testing.T) {
	store := NewLSM(LSMConfig{MemBytes: 1 << 30}, testFS())
	store.Insert(model.Tuple{Key: 7, Time: 9})
	res, err := store.Query(model.Query{Keys: model.KeyRange{Lo: 7, Hi: 7}, Times: model.FullTimeRange()})
	if err != nil || len(res.Tuples) != 1 {
		t.Fatalf("memtable read: %v, %v", res, err)
	}
}

func TestLSMQueryAfterExplicitFlush(t *testing.T) {
	store := NewLSM(LSMConfig{MemBytes: 1 << 30}, testFS())
	for i := 0; i < 500; i++ {
		store.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
	}
	store.Flush()
	if store.MemLen() != 0 {
		t.Fatal("memtable not drained")
	}
	res, err := store.Query(model.Query{
		Keys:  model.KeyRange{Lo: 100, Hi: 199},
		Times: model.TimeRange{Lo: 0, Hi: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 51 { // keys 100..150
		t.Fatalf("got %d, want 51", len(res.Tuples))
	}
}

func TestTSCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	store := NewTS(TSConfig{SegmentBytes: 8 << 10}, testFS())
	defer store.Close()
	tuples := randTuples(10_000, rng)
	for _, tp := range tuples {
		store.Insert(tp)
	}
	if store.Segments() == 0 {
		t.Fatal("no segments sealed")
	}
	for _, q := range randQueries(30, rng) {
		res, err := store.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if want := refQuery(tuples, q); len(res.Tuples) != want {
			t.Fatalf("query %v: got %d, want %d", q, len(res.Tuples), want)
		}
	}
}

func TestTSLiveSegmentVisible(t *testing.T) {
	store := NewTS(TSConfig{SegmentBytes: 1 << 30}, testFS())
	store.Insert(model.Tuple{Key: 5, Time: 100})
	res, err := store.Query(model.Query{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 50, Hi: 150}})
	if err != nil || len(res.Tuples) != 1 {
		t.Fatalf("live read: %v, %v", res, err)
	}
}

func TestTSTimePruning(t *testing.T) {
	fs := testFS()
	store := NewTS(TSConfig{SegmentBytes: 1 << 10}, fs)
	// Three temporally disjoint batches → multiple segments.
	for w := 0; w < 3; w++ {
		for i := 0; i < 200; i++ {
			store.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(w*100_000 + i)})
		}
	}
	store.Flush()
	reads0 := fs.Metrics().Reads.Load()
	res, err := store.Query(model.Query{
		Keys:  model.FullKeyRange(),
		Times: model.TimeRange{Lo: 100_000, Hi: 100_050},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 51 {
		t.Fatalf("got %d, want 51", len(res.Tuples))
	}
	readsPerSegment := int64(3) // footer + index + data
	if got := fs.Metrics().Reads.Load() - reads0; got > readsPerSegment*2 {
		t.Errorf("time pruning ineffective: %d reads for a 1-window query", got)
	}
}

func TestTSOutOfOrderWithinSegment(t *testing.T) {
	store := NewTS(TSConfig{SegmentBytes: 1 << 30}, testFS())
	times := []model.Timestamp{50, 10, 90, 30, 70}
	for i, ts := range times {
		store.Insert(model.Tuple{Key: model.Key(i), Time: ts})
	}
	store.Flush()
	res, err := store.Query(model.Query{Keys: model.FullKeyRange(), Times: model.TimeRange{Lo: 20, Hi: 60}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 { // times 50, 30
		t.Fatalf("got %d, want 2", len(res.Tuples))
	}
}

func TestStoresWithFilters(t *testing.T) {
	for name, mk := range map[string]func() Store{
		"lsm": func() Store { return NewLSM(LSMConfig{MemBytes: 4 << 10}, testFS()) },
		"ts":  func() Store { return NewTS(TSConfig{SegmentBytes: 4 << 10}, testFS()) },
	} {
		store := mk()
		for i := 0; i < 1000; i++ {
			store.Insert(model.Tuple{Key: model.Key(i), Time: model.Timestamp(i)})
		}
		res, err := store.Query(model.Query{
			Keys:   model.FullKeyRange(),
			Times:  model.FullTimeRange(),
			Filter: model.KeyMod(10, 0),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tuples) != 100 {
			t.Fatalf("%s: filtered %d, want 100", name, len(res.Tuples))
		}
		store.Close()
	}
}
