package baseline

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"waterwheel/internal/core"
	"waterwheel/internal/dfs"
	"waterwheel/internal/model"
)

// LSMConfig tunes the HBase-like LSM store.
type LSMConfig struct {
	// MemBytes is the memtable flush threshold (default 16 MB).
	MemBytes int64
	// MaxRunsPerLevel triggers size-tiered compaction (default 4).
	MaxRunsPerLevel int
	// SparseEvery is the sparse-index stride in tuples (default 64).
	SparseEvery int
	// Node is the cluster node issuing file-system I/O.
	Node int
}

func (c *LSMConfig) fill() {
	if c.MemBytes <= 0 {
		c.MemBytes = 16 << 20
	}
	if c.MaxRunsPerLevel <= 0 {
		c.MaxRunsPerLevel = 4
	}
	if c.SparseEvery <= 0 {
		c.SparseEvery = 64
	}
}

// run is one immutable sorted run on the file system.
type run struct {
	path           string
	count          int
	minKey, maxKey model.Key
	size           int64
}

// LSM is an LSM-tree store in the mould of HBase: a concurrent-B+-tree
// memtable (HBase's sorted memstore), key-sorted immutable runs, and
// size-tiered compaction that merges fresh data into historical data —
// the global-merge cost Waterwheel's partitioning avoids. Key range
// queries are indexed; time constraints are applied by post-filtering.
type LSM struct {
	cfg LSMConfig
	fs  *dfs.FS

	mu       sync.Mutex
	mem      *core.ConcurrentTree
	memBytes int64
	levels   [][]run
	seq      int
}

var _ Store = (*LSM)(nil)

// NewLSM creates an LSM store over the given file system.
func NewLSM(cfg LSMConfig, fs *dfs.FS) *LSM {
	cfg.fill()
	return &LSM{cfg: cfg, fs: fs, mem: core.NewConcurrentTree(0, 0)}
}

// Insert adds a tuple to the memtable, flushing (and possibly compacting)
// at the threshold.
func (l *LSM) Insert(t model.Tuple) {
	l.mem.Insert(t)
	l.mu.Lock()
	l.memBytes += int64(t.Size())
	full := l.memBytes >= l.cfg.MemBytes
	l.mu.Unlock()
	if full {
		l.Flush()
	}
}

// Flush writes the memtable as a new L0 run and compacts as needed.
func (l *LSM) Flush() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.mem.Len() == 0 {
		return
	}
	var tuples []model.Tuple
	l.mem.Range(model.FullKeyRange(), model.FullTimeRange(), nil, func(t *model.Tuple) bool {
		cp := *t
		cp.Payload = append([]byte(nil), t.Payload...)
		tuples = append(tuples, cp)
		return true
	})
	l.mem = core.NewConcurrentTree(0, 0)
	l.memBytes = 0
	r := l.writeRun(tuples)
	if len(l.levels) == 0 {
		l.levels = append(l.levels, nil)
	}
	l.levels[0] = append(l.levels[0], r)
	l.compactLocked()
}

// writeRun persists a key-sorted run.
//
// Layout: [tuples][sparse index: {key,offset}…][footer: idxOff(8)
// idxN(4) count(4) minKey(8) maxKey(8)].
func (l *LSM) writeRun(sorted []model.Tuple) run {
	var data []byte
	type idxEntry struct {
		key model.Key
		off int64
	}
	var idx []idxEntry
	for i := range sorted {
		if i%l.cfg.SparseEvery == 0 {
			idx = append(idx, idxEntry{key: sorted[i].Key, off: int64(len(data))})
		}
		data = model.AppendTuple(data, &sorted[i])
	}
	idxOff := int64(len(data))
	var tmp [8]byte
	for _, e := range idx {
		binary.BigEndian.PutUint64(tmp[:], uint64(e.key))
		data = append(data, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], uint64(e.off))
		data = append(data, tmp[:]...)
	}
	binary.BigEndian.PutUint64(tmp[:], uint64(idxOff))
	data = append(data, tmp[:]...)
	var tmp4 [4]byte
	binary.BigEndian.PutUint32(tmp4[:], uint32(len(idx)))
	data = append(data, tmp4[:]...)
	binary.BigEndian.PutUint32(tmp4[:], uint32(len(sorted)))
	data = append(data, tmp4[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(sorted[0].Key))
	data = append(data, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(sorted[len(sorted)-1].Key))
	data = append(data, tmp[:]...)

	l.seq++
	path := fmt.Sprintf("lsm/run%d", l.seq)
	if err := l.fs.Write(path, data); err != nil {
		panic(fmt.Sprintf("baseline: run write: %v", err))
	}
	return run{
		path:   path,
		count:  len(sorted),
		minKey: sorted[0].Key,
		maxKey: sorted[len(sorted)-1].Key,
		size:   int64(len(data)),
	}
}

// compactLocked merges any level exceeding MaxRunsPerLevel into the next
// level — the data-merging overhead the paper identifies as the LSM
// insertion bottleneck. Runs synchronously, stalling inserts like a
// write-stall.
func (l *LSM) compactLocked() {
	for lvl := 0; lvl < len(l.levels); lvl++ {
		if len(l.levels[lvl]) <= l.cfg.MaxRunsPerLevel {
			continue
		}
		var all []model.Tuple
		for _, r := range l.levels[lvl] {
			tuples, _, err := l.readRunRange(r, model.FullKeyRange())
			if err != nil {
				panic(fmt.Sprintf("baseline: compaction read: %v", err))
			}
			all = append(all, tuples...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Key != all[j].Key {
				return all[i].Key < all[j].Key
			}
			return all[i].Time < all[j].Time
		})
		merged := l.writeRun(all)
		for _, r := range l.levels[lvl] {
			l.fs.Delete(r.path)
		}
		l.levels[lvl] = nil
		if lvl+1 >= len(l.levels) {
			l.levels = append(l.levels, nil)
		}
		l.levels[lvl+1] = append(l.levels[lvl+1], merged)
	}
}

// readRunRange reads the tuples of a run within a key range using the
// sparse index: one footer+index read, then one data-extent read. The
// second return value is the number of data bytes fetched and decoded.
func (l *LSM) readRunRange(r run, kr model.KeyRange) ([]model.Tuple, int64, error) {
	size, err := l.fs.Size(r.path)
	if err != nil {
		return nil, 0, err
	}
	const footer = 8 + 4 + 4 + 8 + 8
	fbuf, _, err := l.fs.ReadAt(r.path, size-footer, footer, l.cfg.Node)
	if err != nil {
		return nil, 0, err
	}
	idxOff := int64(binary.BigEndian.Uint64(fbuf[0:8]))
	idxN := int(binary.BigEndian.Uint32(fbuf[8:12]))
	ibuf, _, err := l.fs.ReadAt(r.path, idxOff, int64(idxN)*16, l.cfg.Node)
	if err != nil {
		return nil, 0, err
	}
	keys := make([]model.Key, idxN)
	offs := make([]int64, idxN)
	for i := 0; i < idxN; i++ {
		keys[i] = model.Key(binary.BigEndian.Uint64(ibuf[i*16:]))
		offs[i] = int64(binary.BigEndian.Uint64(ibuf[i*16+8:]))
	}
	// Start at the last index entry with key <= kr.Lo; end at the first
	// entry with key > kr.Hi.
	start := sort.Search(idxN, func(i int) bool { return keys[i] > kr.Lo }) - 1
	if start < 0 {
		start = 0
	}
	end := sort.Search(idxN, func(i int) bool { return keys[i] > kr.Hi })
	var endOff int64
	if end >= idxN {
		endOff = idxOff
	} else {
		endOff = offs[end]
	}
	startOff := offs[start]
	if startOff >= endOff {
		return nil, 0, nil
	}
	dbuf, _, err := l.fs.ReadAt(r.path, startOff, endOff-startOff, l.cfg.Node)
	if err != nil {
		return nil, 0, err
	}
	read := endOff - startOff
	var out []model.Tuple
	for len(dbuf) > 0 {
		t, n, err := model.DecodeTuple(dbuf)
		if err != nil {
			return nil, 0, err
		}
		dbuf = dbuf[n:]
		if t.Key > kr.Hi {
			break
		}
		if t.Key >= kr.Lo {
			t.Payload = append([]byte(nil), t.Payload...)
			out = append(out, t)
		}
	}
	return out, read, nil
}

// Query scans the memtable and every run overlapping the key range. The
// time constraint is applied by post-filtering — the store has no
// temporal index (paper Table I).
func (l *LSM) Query(q model.Query) (*model.Result, error) {
	res := &model.Result{QueryID: q.ID}
	l.mem.Range(q.Keys, q.Times, q.Filter, func(t *model.Tuple) bool {
		cp := *t
		cp.Payload = append([]byte(nil), t.Payload...)
		res.Tuples = append(res.Tuples, cp)
		return true
	})
	l.mu.Lock()
	var candidates []run
	for _, lvl := range l.levels {
		for _, r := range lvl {
			if r.minKey <= q.Keys.Hi && r.maxKey >= q.Keys.Lo {
				candidates = append(candidates, r)
			}
		}
	}
	l.mu.Unlock()
	for _, r := range candidates {
		tuples, bytes, err := l.readRunRange(r, q.Keys)
		if err != nil {
			return nil, err
		}
		res.BytesRead += bytes
		for i := range tuples {
			t := &tuples[i]
			if q.Times.Contains(t.Time) && q.Filter.Matches(t) {
				res.Tuples = append(res.Tuples, *t)
			}
		}
	}
	res.SortTuples()
	return res, nil
}

// Runs returns the total number of persisted runs (for tests).
func (l *LSM) Runs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, lvl := range l.levels {
		n += len(lvl)
	}
	return n
}

// MemLen returns the memtable tuple count.
func (l *LSM) MemLen() int { return l.mem.Len() }

// Close implements Store.
func (l *LSM) Close() {}
