package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	rng := rand.New(rand.NewSource(1))
	items := make([]uint64, 1000)
	for i := range items {
		items[i] = rng.Uint64()
		f.Add(items[i])
	}
	for _, it := range items {
		if !f.MayContain(it) {
			t.Fatalf("false negative for %d", it)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 5000
	f := NewWithEstimates(n, 0.01)
	rng := rand.New(rand.NewSource(2))
	present := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		v := rng.Uint64()
		present[v] = true
		f.Add(v)
	}
	fp, probes := 0, 0
	for i := 0; i < 20000; i++ {
		v := rng.Uint64()
		if present[v] {
			continue
		}
		probes++
		if f.MayContain(v) {
			fp++
		}
	}
	rate := float64(fp) / float64(probes)
	if rate > 0.05 {
		t.Errorf("false positive rate %.4f far above target 0.01", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	hits := 0
	for i := uint64(0); i < 1000; i++ {
		if f.MayContain(i) {
			hits++
		}
	}
	if hits != 0 {
		t.Errorf("empty filter claimed %d items", hits)
	}
}

func TestReset(t *testing.T) {
	f := NewWithEstimates(10, 0.01)
	f.Add(42)
	if !f.MayContain(42) {
		t.Fatal("add failed")
	}
	f.Reset()
	if f.MayContain(42) {
		t.Error("reset did not clear")
	}
}

func TestNewClamps(t *testing.T) {
	f := New(0, 0)
	if f.Bits() == 0 || f.K() < 1 {
		t.Errorf("New(0,0) produced unusable filter: bits=%d k=%d", f.Bits(), f.K())
	}
	f = New(100, 99)
	if f.K() > 16 {
		t.Errorf("k not clamped: %d", f.K())
	}
	if f.Bits()%64 != 0 {
		t.Errorf("bits not rounded to word: %d", f.Bits())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := NewWithEstimates(500, 0.02)
	for i := uint64(0); i < 500; i += 3 {
		f.Add(i)
	}
	buf := f.AppendTo(nil)
	g, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	for i := uint64(0); i < 500; i++ {
		if f.MayContain(i) != g.MayContain(i) {
			t.Fatalf("decoded filter disagrees at %d", i)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2}); err == nil {
		t.Error("short buffer must fail")
	}
	f := New(128, 4)
	buf := f.AppendTo(nil)
	buf[0] = 200 // absurd k
	if _, _, err := Decode(buf); err == nil {
		t.Error("bad k must fail")
	}
}

func TestTimeSketchBasic(t *testing.T) {
	s := NewTimeSketch(1000, 100, 0.01)
	// Tuples in seconds 10..19.
	for ts := int64(10000); ts < 20000; ts += 250 {
		s.AddTime(ts)
	}
	if !s.MayOverlap(15000, 15999) {
		t.Error("false negative inside covered range")
	}
	if !s.MayOverlap(9500, 10100) {
		t.Error("range straddling the first covered bucket must match")
	}
	if s.MayOverlap(50000, 51000) && s.MayOverlap(52000, 53000) && s.MayOverlap(54000, 55000) {
		t.Error("sketch matches every distant range — filter useless")
	}
	if s.MayOverlap(100, 50) {
		t.Error("inverted range must not match")
	}
}

func TestTimeSketchNegativeTimes(t *testing.T) {
	s := NewTimeSketch(1000, 16, 0.01)
	s.AddTime(-1500) // bucket -2 with floor division
	if !s.MayOverlap(-2000, -1001) {
		t.Error("negative-timestamp bucket missed")
	}
	if s.MayOverlap(-1000, -1) && s.MayOverlap(0, 999) {
		t.Error("adjacent uncovered buckets both positive — suspicious hashing")
	}
}

func TestTimeSketchWideRangeShortCircuits(t *testing.T) {
	s := NewTimeSketch(1000, 16, 0.01)
	// Nothing added; a range spanning >=128 buckets conservatively matches.
	if !s.MayOverlap(0, 1_000_000) {
		t.Error("very wide range should short-circuit to true")
	}
}

func TestTimeSketchEncodeRoundTrip(t *testing.T) {
	s := NewTimeSketch(500, 64, 0.01)
	for ts := int64(0); ts < 30000; ts += 777 {
		s.AddTime(ts)
	}
	buf := s.AppendTo(nil)
	g, n, err := DecodeTimeSketch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if g.BucketMillis != s.BucketMillis {
		t.Errorf("bucketMillis %d != %d", g.BucketMillis, s.BucketMillis)
	}
	for lo := int64(0); lo < 30000; lo += 333 {
		if s.MayOverlap(lo, lo+100) != g.MayOverlap(lo, lo+100) {
			t.Fatalf("decoded sketch disagrees at %d", lo)
		}
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(items []uint64, probe uint64) bool {
		fl := NewWithEstimates(len(items)+1, 0.01)
		for _, it := range items {
			fl.Add(it)
		}
		for _, it := range items {
			if !fl.MayContain(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
