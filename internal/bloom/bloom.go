// Package bloom implements the bloom filters Waterwheel attaches to B+ tree
// leaves. The time domain is partitioned into mini-ranges (fixed-width
// buckets); each leaf's filter records the buckets covered by its tuples so
// temporal-selective subqueries can skip leaves that cannot contain
// qualifying tuples (paper §IV-B).
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Filter is a standard Bloom filter over uint64 items using the
// Kirsch-Mitzenmacher double-hashing scheme: g_i(x) = h1(x) + i*h2(x).
// The zero value is unusable; construct with New or NewWithEstimates.
type Filter struct {
	bits  []uint64
	nbits uint64
	k     int
}

// New creates a filter with the given number of bits (rounded up to a
// multiple of 64) and hash functions. nbits must be positive; k is clamped
// to [1, 16].
func New(nbits uint64, k int) *Filter {
	if nbits == 0 {
		nbits = 64
	}
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	words := (nbits + 63) / 64
	return &Filter{bits: make([]uint64, words), nbits: words * 64, k: k}
}

// NewWithEstimates creates a filter sized for n items at the given false
// positive rate.
func NewWithEstimates(n int, fpRate float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	// m = -n ln p / (ln 2)^2 ; k = m/n ln 2
	m := math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2))
	k := int(math.Round(m / float64(n) * math.Ln2))
	return New(uint64(m), k)
}

// splitmix64 is a strong 64-bit mixer; we derive two independent hashes from
// one pass with different seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (f *Filter) hashes(item uint64) (h1, h2 uint64) {
	h1 = splitmix64(item)
	h2 = splitmix64(item ^ 0x6a09e667f3bcc909)
	h2 |= 1 // force odd so strides cover the table
	return
}

// Add inserts an item.
func (f *Filter) Add(item uint64) {
	h1, h2 := f.hashes(item)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain reports whether the item may have been added. False positives
// are possible; false negatives are not.
func (f *Filter) MayContain(item uint64) bool {
	h1, h2 := f.hashes(item)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears all bits, reusing the allocation.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
}

// Bits returns the number of bits in the filter.
func (f *Filter) Bits() uint64 { return f.nbits }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// SizeBytes returns the in-memory footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// errCorrupt reports a malformed encoded filter.
var errCorrupt = errors.New("bloom: corrupt encoding")

// maxEncodedWords bounds decode allocations (64 MiB of bits).
const maxEncodedWords = 8 << 20

// AppendTo appends a binary encoding of the filter to dst.
//
// Layout: [4B k][8B nbits][words * 8B bits].
func (f *Filter) AppendTo(dst []byte) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(f.k))
	dst = append(dst, tmp[:4]...)
	binary.BigEndian.PutUint64(tmp[:], f.nbits)
	dst = append(dst, tmp[:]...)
	for _, w := range f.bits {
		binary.BigEndian.PutUint64(tmp[:], w)
		dst = append(dst, tmp[:]...)
	}
	return dst
}

// Decode reads a filter from the front of buf, returning it and the bytes
// consumed.
func Decode(buf []byte) (*Filter, int, error) {
	if len(buf) < 12 {
		return nil, 0, errCorrupt
	}
	k := int(binary.BigEndian.Uint32(buf[0:4]))
	nbits := binary.BigEndian.Uint64(buf[4:12])
	if k < 1 || k > 16 || nbits%64 != 0 {
		return nil, 0, fmt.Errorf("%w: k=%d nbits=%d", errCorrupt, k, nbits)
	}
	words := int(nbits / 64)
	if words > maxEncodedWords {
		return nil, 0, fmt.Errorf("%w: filter too large (%d words)", errCorrupt, words)
	}
	need := 12 + words*8
	if len(buf) < need {
		return nil, 0, errCorrupt
	}
	f := &Filter{bits: make([]uint64, words), nbits: nbits, k: k}
	for i := 0; i < words; i++ {
		f.bits[i] = binary.BigEndian.Uint64(buf[12+i*8:])
	}
	return f, need, nil
}

// TimeSketch maps a leaf's tuple timestamps into time mini-ranges and
// records them in a bloom filter. BucketMillis is the mini-range width; a
// query's time interval expands to the covered buckets, and the leaf is
// skipped when none of them may be present.
type TimeSketch struct {
	// BucketMillis is the mini-range width in milliseconds.
	BucketMillis int64
	F            *Filter
}

// NewTimeSketch creates a sketch sized for roughly n distinct buckets.
func NewTimeSketch(bucketMillis int64, n int, fpRate float64) *TimeSketch {
	if bucketMillis <= 0 {
		bucketMillis = 1000
	}
	return &TimeSketch{BucketMillis: bucketMillis, F: NewWithEstimates(n, fpRate)}
}

// bucket maps a timestamp (millis) to its mini-range index. Floor division
// keeps negative timestamps consistent.
func (s *TimeSketch) bucket(t int64) uint64 {
	b := t / s.BucketMillis
	if t%s.BucketMillis < 0 {
		b--
	}
	return uint64(b)
}

// AddTime records a tuple timestamp.
func (s *TimeSketch) AddTime(t int64) { s.F.Add(s.bucket(t)) }

// MayOverlap reports whether any mini-range in [lo, hi] may be present.
// Wide ranges short-circuit to true after maxProbes buckets — probing
// thousands of buckets would cost more than reading the leaf.
func (s *TimeSketch) MayOverlap(lo, hi int64) bool {
	if lo > hi {
		return false
	}
	const maxProbes = 128
	b0, b1 := s.bucket(lo), s.bucket(hi)
	if b1-b0 >= maxProbes {
		return true
	}
	for b := b0; ; b++ {
		if s.F.MayContain(b) {
			return true
		}
		if b == b1 {
			return false
		}
	}
}

// Reset clears the sketch for reuse.
func (s *TimeSketch) Reset() { s.F.Reset() }

// AppendTo appends a binary encoding: [8B bucketMillis][filter].
func (s *TimeSketch) AppendTo(dst []byte) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(s.BucketMillis))
	dst = append(dst, tmp[:]...)
	return s.F.AppendTo(dst)
}

// DecodeTimeSketch reads a sketch from the front of buf.
func DecodeTimeSketch(buf []byte) (*TimeSketch, int, error) {
	if len(buf) < 8 {
		return nil, 0, errCorrupt
	}
	bm := int64(binary.BigEndian.Uint64(buf[0:8]))
	if bm <= 0 {
		return nil, 0, fmt.Errorf("%w: bucketMillis=%d", errCorrupt, bm)
	}
	f, n, err := Decode(buf[8:])
	if err != nil {
		return nil, 0, err
	}
	return &TimeSketch{BucketMillis: bm, F: f}, 8 + n, nil
}
