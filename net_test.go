package waterwheel

import (
	"strings"
	"sync"
	"testing"

	"waterwheel/internal/transport"
)

func TestNetServerRejectsGarbage(t *testing.T) {
	db := openTestDB(t, Options{})
	ns, err := db.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	// Speak the raw transport protocol with malformed payloads.
	raw, err := transport.Dial(ns.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	if _, err := raw.Call("insert", []byte{1, 2, 3}); err == nil {
		t.Error("garbage insert batch accepted")
	}
	if _, err := raw.Call("query", []byte("not-gob")); err == nil {
		t.Error("garbage query accepted")
	}
	if _, err := raw.Call("trace", []byte("not-gob")); err == nil {
		t.Error("garbage trace query accepted")
	}
	if _, err := raw.Call("no-such-method", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown method") {
		t.Errorf("unknown method: %v", err)
	}
	// The connection and the server survive all of that.
	if _, err := raw.Call("stats", nil); err != nil {
		t.Errorf("stats after garbage: %v", err)
	}
}

// TestNetConcurrentInsertQuery drives inserts and queries concurrently
// over one multiplexed connection: slow queries must not stall inserts,
// and responses must demultiplex to the right callers.
func TestNetConcurrentInsertQuery(t *testing.T) {
	db := openTestDB(t, Options{})
	ns, err := db.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	cl, err := Dial(ns.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const (
		writers  = 4
		perBatch = 50
		batches  = 20
		readers  = 3
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*batches+readers*batches)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				ts := make([]Tuple, perBatch)
				for i := range ts {
					n := (w*batches+b)*perBatch + i
					ts[i] = Tuple{Key: Key(n), Time: Timestamp(1000 + n), Payload: []byte{byte(w)}}
				}
				if err := cl.InsertBatch(ts); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if _, err := cl.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange()}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent net traffic: %v", err)
	}

	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	want := writers * perBatch * batches
	if len(res.Tuples) != want {
		t.Errorf("after concurrent inserts: %d tuples, want %d", len(res.Tuples), want)
	}
}

// TestNetStatsTraceMetricsRoundTrip exercises the introspection verbs over
// TCP: stats counters, the per-query span tree, and the Prometheus text.
func TestNetStatsTraceMetricsRoundTrip(t *testing.T) {
	db := openTestDB(t, Options{})
	ns, err := db.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	cl, err := Dial(ns.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 500
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = Tuple{Key: Key(i), Time: Timestamp(1000 + i), Payload: []byte("p")}
	}
	if err := cl.InsertBatch(ts); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingested != n {
		t.Errorf("stats over TCP: Ingested = %d, want %d", st.Ingested, n)
	}
	if st.Flushes == 0 || st.Chunks == 0 {
		t.Errorf("stats over TCP: Flushes = %d, Chunks = %d, want > 0", st.Flushes, st.Chunks)
	}

	res, tr, err := cl.QueryTraced(Query{Keys: FullKeyRange(), Times: FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != n {
		t.Errorf("traced query: %d tuples, want %d", len(res.Tuples), n)
	}
	if tr == nil || tr.Root == nil {
		t.Fatal("traced query returned no span tree")
	}
	if tr.Root.Name != "query" || tr.Root.Dur <= 0 {
		t.Errorf("root span = %q dur %v, want named query with positive duration", tr.Root.Name, tr.Root.Dur)
	}
	for _, name := range []string{"decompose", "dispatch", "merge", "chunk_subquery", "chunk_open", "scan"} {
		if tr.Root.Find(name) == nil {
			t.Errorf("trace lacks %q span:\n%s", name, tr.Format())
		}
	}
	// Stage durations nest inside the query latency.
	var stages int64
	for _, c := range tr.Root.Children {
		stages += int64(c.Dur)
	}
	if stages > int64(tr.Root.Dur) {
		t.Errorf("stage durations sum to %d > query %d", stages, int64(tr.Root.Dur))
	}

	text, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"waterwheel_ingest_tuples_total 500",
		"waterwheel_queries_total",
		"waterwheel_chunk_subqueries_total",
		`waterwheel_query_dispatch_seconds{policy="lada",quantile="0.5"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics over TCP lack %q", want)
		}
	}
}

func TestServeBadAddress(t *testing.T) {
	db := openTestDB(t, Options{})
	if _, err := db.Serve("256.256.256.256:99999"); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestClientQueryAfterServerClose(t *testing.T) {
	db := openTestDB(t, Options{})
	ns, _ := db.Serve("127.0.0.1:0")
	cl, err := Dial(ns.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ns.Close()
	if _, err := cl.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange()}); err == nil {
		t.Error("query against closed server succeeded")
	}
}

// TestNetAdminElasticOps drives the whole elastic lifecycle over the wire:
// scale out, planned handoff, takeover, scale in — then proves the data
// survived every step by querying through the same client.
func TestNetAdminElasticOps(t *testing.T) {
	db := openTestDB(t, Options{Nodes: 2, IndexServersPerNode: 2, HotStandby: true})
	ns, err := db.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	cl, err := Dial(ns.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 2000
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{Key: Key(uint64(i) * 0x9E3779B97F4A7C15), Time: Timestamp(i), Payload: []byte{byte(i)}}
	}
	if err := cl.InsertBatch(tuples[:n/2]); err != nil {
		t.Fatal(err)
	}

	slots, err := cl.ActiveSlots()
	if err != nil {
		t.Fatal(err)
	}
	id, err := cl.AddIndexServer()
	if err != nil {
		t.Fatal(err)
	}
	if id < len(slots) {
		t.Errorf("new slot id %d collides with existing slots %v", id, slots)
	}
	if err := cl.StartStandby(slots[0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.PromoteStandby(slots[0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.KillIndexServer(slots[1]); err != nil {
		t.Fatal(err)
	}
	if err := cl.DecommissionIndexServer(id); err != nil {
		t.Fatal(err)
	}
	after, err := cl.ActiveSlots()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(slots) {
		t.Errorf("active slots after add+decommission: %v, want %d slots", after, len(slots))
	}

	if err := cl.InsertBatch(tuples[n/2:]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != n {
		t.Errorf("query after elastic churn returned %d tuples, want %d", len(res.Tuples), n)
	}

	// Bad requests fail cleanly and the connection survives.
	if _, err := cl.admin("resize-flux-capacitor", 0); err == nil {
		t.Error("unknown admin op accepted")
	}
	if _, err := cl.ActiveSlots(); err != nil {
		t.Errorf("slots after bad op: %v", err)
	}
}
