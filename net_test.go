package waterwheel

import (
	"strings"
	"testing"

	"waterwheel/internal/transport"
)

func TestNetServerRejectsGarbage(t *testing.T) {
	db := openTestDB(t, Options{})
	ns, err := db.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	// Speak the raw transport protocol with malformed payloads.
	raw, err := transport.Dial(ns.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	if _, err := raw.Call("insert", []byte{1, 2, 3}); err == nil {
		t.Error("garbage insert batch accepted")
	}
	if _, err := raw.Call("query", []byte("not-gob")); err == nil {
		t.Error("garbage query accepted")
	}
	if _, err := raw.Call("no-such-method", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown method") {
		t.Errorf("unknown method: %v", err)
	}
	// The connection and the server survive all of that.
	if _, err := raw.Call("stats", nil); err != nil {
		t.Errorf("stats after garbage: %v", err)
	}
}

func TestServeBadAddress(t *testing.T) {
	db := openTestDB(t, Options{})
	if _, err := db.Serve("256.256.256.256:99999"); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestClientQueryAfterServerClose(t *testing.T) {
	db := openTestDB(t, Options{})
	ns, _ := db.Serve("127.0.0.1:0")
	cl, err := Dial(ns.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ns.Close()
	if _, err := cl.Query(Query{Keys: FullKeyRange(), Times: FullTimeRange()}); err == nil {
		t.Error("query against closed server succeeded")
	}
}
