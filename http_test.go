package waterwheel

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugHandlerEndpoints(t *testing.T) {
	db := openTestDB(t, Options{})
	const n = 300
	for i := 0; i < n; i++ {
		db.Insert(Tuple{Key: Key(i), Time: Timestamp(1000 + i), Payload: []byte("p")})
	}
	db.Drain()
	db.Flush()
	if _, _, err := db.QueryTraced(Query{Keys: FullKeyRange(), Times: FullTimeRange()}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		if _, err := io.Copy(&b, resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return b.String(), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE waterwheel_ingest_tuples_total counter",
		"waterwheel_ingest_tuples_total 300",
		"waterwheel_queries_total 1",
		`waterwheel_chunk_subquery_seconds{quantile="0.99"}`,
		"waterwheel_memtable_bytes",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	debug, ctype := get("/debug/waterwheel")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/waterwheel content type = %q", ctype)
	}
	var snap struct {
		Stats struct {
			Ingested int64 `json:"Ingested"`
			Chunks   int   `json:"Chunks"`
		} `json:"stats"`
		IndexServers []map[string]any `json:"index_servers"`
		QueryServers []map[string]any `json:"query_servers"`
		Traces       []string         `json:"traces"`
	}
	if err := json.Unmarshal([]byte(debug), &snap); err != nil {
		t.Fatalf("/debug/waterwheel not JSON: %v\n%s", err, debug)
	}
	if snap.Stats.Ingested != n {
		t.Errorf("debug stats.Ingested = %d, want %d", snap.Stats.Ingested, n)
	}
	if snap.Stats.Chunks == 0 {
		t.Error("debug stats.Chunks = 0 after flush")
	}
	if len(snap.IndexServers) == 0 || len(snap.QueryServers) == 0 {
		t.Errorf("debug snapshot servers: %d index, %d query",
			len(snap.IndexServers), len(snap.QueryServers))
	}
	if len(snap.Traces) == 0 || !strings.Contains(snap.Traces[len(snap.Traces)-1], "dispatch") {
		t.Errorf("debug snapshot lacks the query trace: %v", snap.Traces)
	}
}

func TestDebugHandlerTelemetryDisabled(t *testing.T) {
	db := openTestDB(t, Options{DisableTelemetry: true})
	db.Insert(Tuple{Key: 1, Time: 1000})
	db.Drain()
	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/metrics with telemetry disabled: %d, want 404", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/waterwheel")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Stats struct {
			Ingested int64 `json:"Ingested"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Stats.Ingested != 1 {
		t.Errorf("debug stats.Ingested = %d with telemetry off, want 1", snap.Stats.Ingested)
	}
}
