package waterwheel

import (
	"encoding/json"
	"net/http"

	"waterwheel/internal/telemetry"
)

// DebugHandler returns the deployment's live introspection surface:
//
//	/metrics          — Prometheus text exposition of every registered metric
//	/debug/waterwheel — JSON snapshot: stats, per-server state, recent traces
//
// Mount it on any mux or serve it directly; cmd/waterwheel exposes it with
// the -http flag. With telemetry disabled /metrics answers 404 but the JSON
// snapshot still works (it reads the always-on counters).
func (db *DB) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	if reg := db.c.Telemetry(); reg != nil {
		mux.Handle("/metrics", reg.PrometheusHandler())
	} else {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
		})
	}
	mux.HandleFunc("/debug/waterwheel", db.serveDebug)
	return mux
}

// debugIndexServer is one indexing server's introspection row.
type debugIndexServer struct {
	ID              int     `json:"id"`
	Ingested        int64   `json:"ingested"`
	Flushes         int64   `json:"flushes"`
	MemTuples       int     `json:"mem_tuples"`
	MemBytes        int64   `json:"mem_bytes"`
	Skewness        float64 `json:"skewness"`
	WatermarkMillis int64   `json:"watermark_millis"`
}

// debugQueryServer is one query server's introspection row.
type debugQueryServer struct {
	ID             int   `json:"id"`
	Node           int   `json:"node"`
	Executed       int64 `json:"executed"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheUsedBytes int64 `json:"cache_used_bytes"`
	CacheEntries   int   `json:"cache_entries"`
}

// debugSnapshot is the /debug/waterwheel document.
type debugSnapshot struct {
	Stats         Stats                      `json:"stats"`
	IndexServers  []debugIndexServer         `json:"index_servers"`
	QueryServers  []debugQueryServer         `json:"query_servers"`
	SchemaVersion int64                      `json:"schema_version"`
	Metrics       []telemetry.MetricSnapshot `json:"metrics,omitempty"`
	Traces        []string                   `json:"traces,omitempty"`
}

func (db *DB) serveDebug(w http.ResponseWriter, _ *http.Request) {
	snap := debugSnapshot{
		Stats:         db.Stats(),
		SchemaVersion: db.c.Metadata().Schema().Version,
	}
	for _, srv := range db.c.IndexServers() {
		if srv == nil { // retired slot
			continue
		}
		snap.IndexServers = append(snap.IndexServers, debugIndexServer{
			ID:              srv.ID(),
			Ingested:        srv.Stats().Ingested.Load(),
			Flushes:         srv.Stats().Flushes.Load(),
			MemTuples:       srv.MemLen(),
			MemBytes:        srv.MemBytes(),
			Skewness:        srv.SkewnessFactor(),
			WatermarkMillis: int64(srv.Watermark()),
		})
	}
	for _, qs := range db.c.QueryServers() {
		cm := qs.CacheMetrics()
		snap.QueryServers = append(snap.QueryServers, debugQueryServer{
			ID:             qs.ID(),
			Node:           qs.Node(),
			Executed:       qs.Executed(),
			CacheHits:      cm.Hits,
			CacheMisses:    cm.Misses,
			CacheEvictions: cm.Evictions,
			CacheUsedBytes: cm.Used,
			CacheEntries:   cm.Entries,
		})
	}
	if reg := db.c.Telemetry(); reg != nil {
		snap.Metrics = reg.Snapshot()
	}
	for _, tr := range db.c.TraceRing().Recent() {
		snap.Traces = append(snap.Traces, tr.Format())
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
