package waterwheel

import (
	"testing"
	"time"

	"waterwheel/internal/dfs"
	"waterwheel/internal/ingest"
	"waterwheel/internal/meta"
	"waterwheel/internal/model"
	"waterwheel/internal/queryexec"
	"waterwheel/internal/telemetry"
)

// insertAllocs measures the average allocations of one DB.Insert on a
// SyncIngest deployment (no WAL, chunk threshold high enough that the
// measured inserts never flush).
func insertAllocs(t *testing.T, disableTelemetry bool) float64 {
	t.Helper()
	db, err := Open(Options{
		SyncIngest:       true,
		ChunkBytes:       256 << 20,
		DisableTelemetry: disableTelemetry,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	// Warm the memtables and samplers past their initial growth so the
	// measurement window sees steady-state behavior.
	n := uint64(0)
	payload := []byte("12345678")
	for i := 0; i < 20000; i++ {
		db.Insert(Tuple{Key: Key(n * 2654435761), Time: Timestamp(1000 + n), Payload: payload})
		n++
	}
	return testing.AllocsPerRun(5000, func() {
		db.Insert(Tuple{Key: Key(n * 2654435761), Time: Timestamp(1000 + n), Payload: payload})
		n++
	})
}

// TestTelemetryInsertOverhead guards the tentpole's hot-path promise:
// enabling telemetry adds no allocations per insert. The counters are
// plain atomics and the latency sample reuses the ingest counter, so the
// instrumented and uninstrumented paths must allocate identically (up to
// amortized slice growth, which the tolerance absorbs).
func TestTelemetryInsertOverhead(t *testing.T) {
	off := insertAllocs(t, true)
	on := insertAllocs(t, false)
	if delta := on - off; delta > 0.5 {
		t.Errorf("telemetry adds %.2f allocations per insert (on=%.2f off=%.2f), want 0",
			delta, on, off)
	}
}

// subQueryAllocs measures the average allocations of one fully-cached
// chunk subquery: a single flushed chunk, a warm header + leaf cache,
// and a narrow key range so the result stays small.
func subQueryAllocs(t *testing.T, instrument bool) float64 {
	t.Helper()
	fs := dfs.New(dfs.Config{Nodes: 3, Replication: 2, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	is := ingest.NewServer(ingest.Config{
		ID: 0, ChunkBytes: 1 << 30, Leaves: 16, SyncFlush: true,
	}, fs, ms, 0)
	t.Cleanup(is.Close)
	for i := 0; i < 2000; i++ {
		is.Insert(model.Tuple{
			Key:     model.Key(uint64(i) * 2654435761),
			Time:    model.Timestamp(1000 + i),
			Payload: []byte{byte(i)},
		})
	}
	info, ok := is.Flush()
	if !ok {
		t.Fatal("flush produced no chunk")
	}
	var m *queryexec.ServerMetrics
	if instrument {
		m = queryexec.NewServerMetrics(telemetry.NewRegistry())
	}
	qs := queryexec.NewServer(queryexec.ServerConfig{
		ID: 0, Node: 0, CacheBytes: 64 << 20, UseBloom: true, Metrics: m,
	}, fs, ms)
	sq := &model.SubQuery{
		Region: model.Region{
			Keys:  model.KeyRange{Lo: info.Region.Keys.Lo, Hi: info.Region.Keys.Lo + 100},
			Times: info.Region.Times,
		},
		Chunk: info.ID,
	}
	// Warm the caches: the first execution faults in the header and the
	// leaves the region touches; every later execution is pure cache hits.
	if _, err := qs.ExecuteSubQuery(sq); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(2000, func() {
		if _, err := qs.ExecuteSubQuery(sq); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTelemetryCacheHitSubQueryOverhead extends the hot-path alloc guard
// to the query side: a cache-hit subquery must not allocate more with
// telemetry enabled, and its absolute allocation count must stay bounded
// (this is what keeps strconv-built cache keys from regressing back to
// fmt.Sprintf).
func TestTelemetryCacheHitSubQueryOverhead(t *testing.T) {
	off := subQueryAllocs(t, false)
	on := subQueryAllocs(t, true)
	if delta := on - off; delta > 0.5 {
		t.Errorf("telemetry adds %.2f allocations per cache-hit subquery (on=%.2f off=%.2f), want 0",
			delta, on, off)
	}
	t.Logf("cache-hit subquery allocs: on=%.2f off=%.2f", on, off)
	// ~8 today; headroom for slice-growth jitter, but tight enough that a
	// fmt.Sprintf cache key (several allocs per lookup) fails the guard.
	if on > 20 {
		t.Errorf("cache-hit subquery allocates %.2f times, want <= 20", on)
	}
}

// TestMemSubQueryAllocBudget guards the memtable scan path against the
// same budget as the cache-hit chunk subquery: result assembly (the
// Result value, the tuple slice, one payload arena per source) is all a
// mem-scan may allocate. The columnar read path hands payloads out as
// arena aliases, so per-tuple payload copies — which would blow the
// budget immediately at this result size — must never come back.
func TestMemSubQueryAllocBudget(t *testing.T) {
	fs := dfs.New(dfs.Config{Nodes: 3, Replication: 2, Seed: 1, Sleep: func(time.Duration) {}})
	ms := meta.NewServer(1)
	is := ingest.NewServer(ingest.Config{
		ID: 0, ChunkBytes: 1 << 30, Leaves: 16, SyncFlush: true,
	}, fs, ms, 0)
	t.Cleanup(is.Close)
	for i := 0; i < 2000; i++ {
		is.Insert(model.Tuple{
			Key:     model.Key(uint64(i) * 2654435761),
			Time:    model.Timestamp(1000 + i),
			Payload: []byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)},
		})
	}
	// No flush: every tuple is resident in the memtable. A narrow key
	// window keeps the result small, as in the chunk-side guard.
	sq := &model.SubQuery{
		Region: model.Region{
			Keys:  model.KeyRange{Lo: 0, Hi: 1 << 24},
			Times: model.FullTimeRange(),
		},
	}
	if res := is.ExecuteSubQuery(sq); len(res.Tuples) == 0 {
		t.Fatal("mem subquery matched no tuples; key window too narrow")
	}
	allocs := testing.AllocsPerRun(2000, func() {
		is.ExecuteSubQuery(sq)
	})
	t.Logf("mem subquery allocs: %.2f", allocs)
	if allocs > 20 {
		t.Errorf("mem subquery allocates %.2f times, want <= 20", allocs)
	}
}
