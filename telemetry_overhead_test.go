package waterwheel

import (
	"testing"
)

// insertAllocs measures the average allocations of one DB.Insert on a
// SyncIngest deployment (no WAL, chunk threshold high enough that the
// measured inserts never flush).
func insertAllocs(t *testing.T, disableTelemetry bool) float64 {
	t.Helper()
	db, err := Open(Options{
		SyncIngest:       true,
		ChunkBytes:       256 << 20,
		DisableTelemetry: disableTelemetry,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	// Warm the memtables and samplers past their initial growth so the
	// measurement window sees steady-state behavior.
	n := uint64(0)
	payload := []byte("12345678")
	for i := 0; i < 20000; i++ {
		db.Insert(Tuple{Key: Key(n * 2654435761), Time: Timestamp(1000 + n), Payload: payload})
		n++
	}
	return testing.AllocsPerRun(5000, func() {
		db.Insert(Tuple{Key: Key(n * 2654435761), Time: Timestamp(1000 + n), Payload: payload})
		n++
	})
}

// TestTelemetryInsertOverhead guards the tentpole's hot-path promise:
// enabling telemetry adds no allocations per insert. The counters are
// plain atomics and the latency sample reuses the ingest counter, so the
// instrumented and uninstrumented paths must allocate identically (up to
// amortized slice growth, which the tolerance absorbs).
func TestTelemetryInsertOverhead(t *testing.T) {
	off := insertAllocs(t, true)
	on := insertAllocs(t, false)
	if delta := on - off; delta > 0.5 {
		t.Errorf("telemetry adds %.2f allocations per insert (on=%.2f off=%.2f), want 0",
			delta, on, off)
	}
}
