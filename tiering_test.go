package waterwheel

import (
	"fmt"
	"testing"
)

const (
	hourMs = int64(3_600_000)
	dayMs  = 24 * hourMs
)

// TestTieringRecurringWindowAcceptance is the acceptance run for
// hierarchical time tiering: three synthetic weeks of hour-bucketed
// history, a "between 09:00 and 12:00 daily" query answered through the
// time-bucket hierarchy, results identical to the per-window oracle, and
// at least 80% of the chunk candidates pruned before the R-tree — read
// back from the waterwheel_tier_pruned_chunks_total counter. A manual
// compaction round then demotes and merges the aged weeks.
func TestTieringRecurringWindowAcceptance(t *testing.T) {
	db := openTestDB(t, Options{
		ChunkBytes:          1 << 30, // flush manually, one chunk per block
		TierWarmAfterMillis: 3 * dayMs,
		TierColdAfterMillis: 7 * dayMs,
	})
	// 21 days in 3-hour blocks, each flushed to its own chunk: 168 chunks
	// whose time spans tile the history.
	const days, blocksPerDay = 21, 8
	for b := 0; b < days*blocksPerDay; b++ {
		start := int64(b) * 3 * hourMs
		for i := 0; i < 4; i++ {
			db.Insert(Tuple{
				Key:  Key(uint64(b*4+i) << 40),
				Time: Timestamp(start + int64(i)*40*60_000),
			})
		}
		db.Drain()
		db.Flush()
	}
	db.Drain()
	chunks := db.Stats().Chunks
	if chunks < days*blocksPerDay {
		t.Fatalf("flushed %d chunks, want >= %d", chunks, days*blocksPerDay)
	}

	span := TimeRange{Lo: 0, Hi: Timestamp(int64(days)*dayMs - 1)}
	res, err := db.Query(Query{Keys: FullKeyRange(), Times: span, Recur: Daily(9*hourMs, 3*hourMs)})
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: the same 21 windows queried one by one, untiered.
	want := make(map[string]bool)
	for d := 0; d < days; d++ {
		lo := int64(d)*dayMs + 9*hourMs
		or, err := db.QueryRange(FullKeyRange(), TimeRange{Lo: Timestamp(lo), Hi: Timestamp(lo + 3*hourMs - 1)})
		if err != nil {
			t.Fatal(err)
		}
		for i := range or.Tuples {
			want[fmt.Sprintf("%d/%d", or.Tuples[i].Key, or.Tuples[i].Time)] = true
		}
	}
	if len(want) != days*4 {
		t.Fatalf("oracle found %d tuples, want %d", len(want), days*4)
	}
	if len(res.Tuples) != len(want) {
		t.Fatalf("recurring query returned %d tuples, oracle %d", len(res.Tuples), len(want))
	}
	for i := range res.Tuples {
		k := fmt.Sprintf("%d/%d", res.Tuples[i].Key, res.Tuples[i].Time)
		if !want[k] {
			t.Fatalf("recurring query returned %s, absent from oracle", k)
		}
	}

	// ≥80% of the candidates were pruned at the bucket level, per the
	// metric the dashboards watch.
	pruned := db.Telemetry().Counter("waterwheel_tier_pruned_chunks_total", "").Value()
	if pruned*5 < int64(chunks)*4 {
		t.Fatalf("bucket hierarchy pruned %d of %d candidates, want >= 80%%", pruned, chunks)
	}

	// One manual compaction round over the aged history: the old weeks
	// demote, cold days merge into downsampled chunks, and the merge
	// shrinks the bytes it touched.
	demoted, merged := db.Compact()
	if demoted == 0 || merged == 0 {
		t.Fatalf("compaction did nothing: demoted=%d merged=%d", demoted, merged)
	}
	if counts := db.TierCounts(); counts[2] == 0 {
		t.Fatalf("no cold chunks after compaction: %v", counts)
	}
	in := db.Telemetry().Counter("waterwheel_compaction_input_bytes_total", "").Value()
	out := db.Telemetry().Counter("waterwheel_compaction_output_bytes_total", "").Value()
	if in == 0 || out >= in {
		t.Fatalf("compaction did not shrink its inputs: in=%d out=%d", in, out)
	}
	// The store still answers full-history queries over the mixed
	// raw/downsampled chunk set.
	if _, err := db.QueryRange(FullKeyRange(), FullTimeRange()); err != nil {
		t.Fatalf("query after compaction: %v", err)
	}
}
