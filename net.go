package waterwheel

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"waterwheel/internal/model"
	"waterwheel/internal/transport"
)

// NetServer exposes a DB over TCP so external producers and analysts can
// insert and query without linking the library. The wire protocol is the
// internal multiplexing RPC transport: many requests in flight per
// connection, so slow queries never stall inserts.
type NetServer struct {
	db  *DB
	srv *transport.Server
	// Addr is the bound listen address.
	Addr string
}

// Serve starts a network front end for the DB on addr (use
// "127.0.0.1:0" for an ephemeral port).
func (db *DB) Serve(addr string) (*NetServer, error) {
	s := transport.NewServer()
	ns := &NetServer{db: db, srv: s}

	s.Handle("insert", func(payload []byte) ([]byte, error) {
		tuples, err := model.DecodeTuples(payload)
		if err != nil {
			return nil, fmt.Errorf("waterwheel: bad insert batch: %w", err)
		}
		// Payloads alias the request buffer; copy them into one arena before
		// handing the batch to the ingestion pipeline.
		total := 0
		for i := range tuples {
			total += len(tuples[i].Payload)
		}
		arena := make([]byte, 0, total)
		for i := range tuples {
			pos := len(arena)
			arena = append(arena, tuples[i].Payload...)
			tuples[i].Payload = arena[pos:len(arena):len(arena)]
		}
		// Do not ack over the wire what the log did not take; on failure the
		// returned BatchError tells the client which prefix was accepted.
		return nil, db.InsertBatch(tuples)
	})
	s.Handle("query", func(payload []byte) ([]byte, error) {
		var q Query
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&q); err != nil {
			return nil, fmt.Errorf("waterwheel: bad query: %w", err)
		}
		res, err := db.Query(q)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(res); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	s.Handle("agg", func(payload []byte) ([]byte, error) {
		var q AggregateQuery
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&q); err != nil {
			return nil, fmt.Errorf("waterwheel: bad aggregate query: %w", err)
		}
		res, err := db.Aggregate(q)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(res); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	s.Handle("drain", func([]byte) ([]byte, error) {
		db.Drain()
		return nil, nil
	})
	s.Handle("flush", func([]byte) ([]byte, error) {
		db.Flush()
		return nil, nil
	})
	s.Handle("stats", func([]byte) ([]byte, error) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(db.Stats()); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	s.Handle("trace", func(payload []byte) ([]byte, error) {
		var q Query
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&q); err != nil {
			return nil, fmt.Errorf("waterwheel: bad trace query: %w", err)
		}
		res, tr, err := db.QueryTraced(q)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(tracedResult{Result: res, Trace: tr}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	s.Handle("admin", func(payload []byte) ([]byte, error) {
		var req adminRequest
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&req); err != nil {
			return nil, fmt.Errorf("waterwheel: bad admin request: %w", err)
		}
		var resp adminResponse
		switch req.Op {
		case "add-server":
			id, err := db.AddIndexServer()
			if err != nil {
				return nil, err
			}
			resp.Server = id
		case "decommission":
			if err := db.DecommissionIndexServer(req.Server); err != nil {
				return nil, err
			}
		case "start-standby":
			if err := db.StartStandby(req.Server); err != nil {
				return nil, err
			}
		case "promote":
			if err := db.PromoteStandby(req.Server); err != nil {
				return nil, err
			}
		case "kill":
			if err := db.KillIndexServer(req.Server); err != nil {
				return nil, err
			}
		case "slots":
			// Read-only: the response's slot list is the answer.
		default:
			return nil, fmt.Errorf("waterwheel: unknown admin op %q", req.Op)
		}
		resp.Slots = db.ActiveSlots()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	s.Handle("metrics", func([]byte) ([]byte, error) {
		var buf bytes.Buffer
		if reg := db.c.Telemetry(); reg != nil {
			reg.WritePrometheus(&buf)
		}
		return buf.Bytes(), nil
	})

	bound, err := s.Listen(addr)
	if err != nil {
		return nil, err
	}
	ns.Addr = bound
	return ns, nil
}

// Close stops accepting network requests (the DB stays open).
func (ns *NetServer) Close() { ns.srv.Close() }

// Client talks to a NetServer.
type Client struct {
	c *transport.Client
}

// Dial connects to a Waterwheel network server.
func Dial(addr string) (*Client, error) {
	c, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Insert sends one tuple.
func (cl *Client) Insert(t Tuple) error {
	return cl.InsertBatch([]Tuple{t})
}

// InsertBatch sends a batch of tuples in one request.
func (cl *Client) InsertBatch(ts []Tuple) error {
	_, err := cl.c.Call("insert", model.AppendTuples(nil, ts))
	return err
}

// Query runs a query remotely.
func (cl *Client) Query(q Query) (*Result, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&q); err != nil {
		return nil, err
	}
	payload, err := cl.c.Call("query", buf.Bytes())
	if err != nil {
		return nil, err
	}
	var res Result
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Aggregate runs an aggregate query remotely.
func (cl *Client) Aggregate(q AggregateQuery) (*AggResult, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&q); err != nil {
		return nil, err
	}
	payload, err := cl.c.Call("agg", buf.Bytes())
	if err != nil {
		return nil, err
	}
	var res AggResult
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Drain waits server-side until all accepted tuples are queryable.
func (cl *Client) Drain() error {
	_, err := cl.c.Call("drain", nil)
	return err
}

// Flush forces a server-side flush of all memtables.
func (cl *Client) Flush() error {
	_, err := cl.c.Call("flush", nil)
	return err
}

// tracedResult pairs a query result with its span tree on the wire.
type tracedResult struct {
	Result *Result
	Trace  *QueryTrace
}

// QueryTraced runs a query remotely and returns its execution trace — the
// span tree the coordinator recorded — alongside the result.
func (cl *Client) QueryTraced(q Query) (*Result, *QueryTrace, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&q); err != nil {
		return nil, nil, err
	}
	payload, err := cl.c.Call("trace", buf.Bytes())
	if err != nil {
		return nil, nil, err
	}
	var tr tracedResult
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&tr); err != nil {
		return nil, nil, err
	}
	return tr.Result, tr.Trace, nil
}

// Metrics fetches the server's Prometheus text exposition. Empty when the
// server runs with telemetry disabled.
func (cl *Client) Metrics() (string, error) {
	payload, err := cl.c.Call("metrics", nil)
	if err != nil {
		return "", err
	}
	return string(payload), nil
}

// adminRequest/adminResponse carry the elastic-operations admin verb.
// Every mutation answers with the post-operation active slot list, so an
// operator script can chain calls without a separate read.
type adminRequest struct {
	// Op is one of "add-server", "decommission", "start-standby",
	// "promote", "kill", "slots".
	Op string
	// Server is the target slot (ignored by add-server and slots).
	Server int
}

type adminResponse struct {
	// Server is the new slot id (add-server only).
	Server int
	// Slots is the active slot set after the operation.
	Slots []int
}

func (cl *Client) admin(op string, server int) (adminResponse, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(adminRequest{Op: op, Server: server}); err != nil {
		return adminResponse{}, err
	}
	payload, err := cl.c.Call("admin", buf.Bytes())
	if err != nil {
		return adminResponse{}, err
	}
	var resp adminResponse
	err = gob.NewDecoder(bytes.NewReader(payload)).Decode(&resp)
	return resp, err
}

// AddIndexServer grows the remote cluster by one indexing server and
// returns the new slot id.
func (cl *Client) AddIndexServer() (int, error) {
	resp, err := cl.admin("add-server", 0)
	return resp.Server, err
}

// DecommissionIndexServer retires a remote slot, draining it out.
func (cl *Client) DecommissionIndexServer(i int) error {
	_, err := cl.admin("decommission", i)
	return err
}

// StartStandby attaches a hot standby to a remote slot.
func (cl *Client) StartStandby(i int) error {
	_, err := cl.admin("start-standby", i)
	return err
}

// PromoteStandby performs a planned handoff of a remote slot.
func (cl *Client) PromoteStandby(i int) error {
	_, err := cl.admin("promote", i)
	return err
}

// KillIndexServer hard-fails a remote slot's owner (fault drill); its
// standby or a cold replacement takes over.
func (cl *Client) KillIndexServer(i int) error {
	_, err := cl.admin("kill", i)
	return err
}

// ActiveSlots fetches the remote cluster's active indexing slots.
func (cl *Client) ActiveSlots() ([]int, error) {
	resp, err := cl.admin("slots", 0)
	return resp.Slots, err
}

// Stats fetches deployment counters.
func (cl *Client) Stats() (Stats, error) {
	payload, err := cl.c.Call("stats", nil)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	err = gob.NewDecoder(bytes.NewReader(payload)).Decode(&s)
	return s, err
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }
