package waterwheel

import "testing"

func TestDropBeforeRetention(t *testing.T) {
	db := openTestDB(t, Options{ChunkBytes: 1 << 30})
	// Three temporally disjoint batches, each flushed to its own chunks.
	for w := 0; w < 3; w++ {
		for i := 0; i < 200; i++ {
			db.Insert(Tuple{
				Key:  Key(uint64(i) << 50),
				Time: Timestamp(w*100_000 + i),
			})
		}
		db.Drain()
		db.Flush()
	}
	chunksBefore := db.Stats().Chunks
	if chunksBefore < 3 {
		t.Fatalf("need >=3 chunks, have %d", chunksBefore)
	}
	// Drop everything before t=100 000: exactly the first batch's chunks.
	dropped := db.DropBefore(100_000)
	if dropped == 0 {
		t.Fatal("nothing dropped")
	}
	if got := db.Stats().Chunks; got != chunksBefore-dropped {
		t.Fatalf("chunks %d, want %d", got, chunksBefore-dropped)
	}
	// Old window empty; later windows intact.
	res, err := db.QueryRange(FullKeyRange(), TimeRange{Lo: 0, Hi: 99_999})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 0 {
		t.Fatalf("dropped window still returns %d tuples", len(res.Tuples))
	}
	res, err = db.QueryRange(FullKeyRange(), TimeRange{Lo: 100_000, Hi: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 400 {
		t.Fatalf("retained windows: %d tuples, want 400", len(res.Tuples))
	}
	// Idempotent.
	if n := db.DropBefore(100_000); n != 0 {
		t.Fatalf("second drop removed %d", n)
	}
}

func TestDropBeforeTruncatesWAL(t *testing.T) {
	db := openTestDB(t, Options{ChunkBytes: 4 << 10})
	for i := 0; i < 2000; i++ {
		db.Insert(Tuple{Key: Key(uint64(i) << 50), Time: Timestamp(i)})
	}
	db.Drain()
	db.Flush()
	db.DropBefore(0) // drops nothing, but releases covered WAL records
	wal := db.Cluster().WAL()
	freed := false
	for i := 0; i < wal.Partitions(); i++ {
		if wal.Partition(i).Base() > 0 {
			freed = true
		}
	}
	if !freed {
		t.Error("WAL retention horizon never advanced")
	}
}
